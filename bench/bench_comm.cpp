// Experiment T3: the communication substrate. Functional side: halo-
// exchange byte/message counts from the virtual cluster (the structure an
// MPI job would produce), cross-checked against the analytic model's
// charges. Model side: per-message sizes and times vs local volume on
// the machine presets, reported both as the un-overlapped serial sum
// (t_sequential) and the overlap-adjusted total (t_total) with the
// hidden-comm fraction. Measured side: the split-phase distributed
// dslash's own phase timers (T3d).
//
// --json <path> records the T3c achieved-vs-model comparison and the
// T3d measured overlap numbers (schema-versioned); --report <path>
// dumps the full telemetry run report (schema lqcd.telemetry/1) so the
// comm.halo.* counters can be diffed against the model offline.
// --quick shrinks the lattice and rep counts for CI smoke runs.
//
// --transport socket|shm reruns the T3a functional section over a real
// backend instead of the in-process virtual cluster: one RankCluster
// per OS process under lqcd_launch, payload vs wire bytes reported
// separately (bench_transport measures the full T9 suite).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "comm/transport/rank_halo.hpp"
#include "comm/transport/transport.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/field.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

struct OverlapRow {
  lqcd::Coord grid{};
  int ranks = 0;
  double t_seq_ms = 0.0;
  double t_ovl_ms = 0.0;
  double hidden = 0.0;
};

/// T3a over a real backend: this process is one rank of the grid; the
/// launcher provides the environment. Rank 0 prints the same columns as
/// the virtual table plus the wire-byte split.
int run_real_transport(const std::string& backend,
                       const lqcd::LatticeGeometry& geo, int reps) {
  using namespace lqcd;
  const char* env = std::getenv("LQCD_TRANSPORT");
  if (env == nullptr || backend != env) {
    std::fprintf(stderr,
                 "bench_comm: --transport %s needs the launcher:\n"
                 "  lqcd_launch -n N --transport %s -- bench_comm ...\n",
                 backend.c_str(), backend.c_str());
    return 2;
  }
  std::unique_ptr<transport::Transport> tp =
      transport::make_transport_from_env();
  const ProcessGrid pg(choose_grid(geo.dims(), tp->size()));
  RankCluster<double> rc(geo, pg, *tp);
  auto f = rc.make_fermion();
  rc.exchange(f);  // warm-up
  tp->barrier();
  rc.exchange(f);  // advance the wire baseline past the barrier frames
  rc.stats().reset();
  WallTimer t;
  for (int i = 0; i < reps; ++i) rc.exchange(f);
  const double ms = t.seconds() * 1e3 / reps;
  const CommStats& cs = rc.stats();
  tp->barrier();
  if (tp->rank() == 0) {
    const Coord g = pg.dims();
    std::printf("T3a (%s): rank-local halo exchange, %dx%dx%dx%d global "
                "lattice\n",
                backend.c_str(), geo.dim(0), geo.dim(1), geo.dim(2),
                geo.dim(3));
    std::printf("%12s %8s %12s %14s %14s %12s\n", "grid", "ranks",
                "msgs/xchg", "payload/xchg", "wire/xchg", "time[ms]");
    std::printf("%5dx%dx%dx%-3d %8d %12lld %14lld %14lld %12.3f\n", g[0],
                g[1], g[2], g[3], pg.size(),
                static_cast<long long>(cs.messages / reps),
                static_cast<long long>(cs.bytes / reps),
                static_cast<long long>(cs.wire_bytes / reps), ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const std::string report_path = cli.get_string("report", "");
  const std::string transport_flag =
      cli.get_string("transport", "virtual");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 16});
  const int reps = quick ? 2 : 5;

  if (transport_flag != "virtual")
    return run_real_transport(transport_flag, geo, reps < 3 ? 3 : reps);

  std::printf("T3a (functional): virtual-cluster halo exchange, "
              "%dx%dx%dx%d global lattice\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3));
  std::printf("%12s %8s %12s %14s %12s\n", "grid", "ranks", "msgs/xchg",
              "bytes/xchg", "time[ms]");
  std::vector<Coord> grids{Coord{1, 1, 1, 2}, Coord{2, 1, 1, 2}};
  if (!quick) {
    grids.push_back(Coord{2, 2, 2, 2});
    grids.push_back(Coord{2, 2, 2, 4});
  }
  for (const Coord grid : grids) {
    const ProcessGrid pg(grid);
    VirtualCluster<double> vc(geo, pg);
    auto f = vc.make_fermion();
    vc.exchange(f);  // warm-up
    vc.stats().reset();
    WallTimer t;
    for (int i = 0; i < reps; ++i) vc.exchange(f);
    const double ms = t.seconds() * 1e3 / reps;
    std::printf("%5dx%dx%dx%-3d %8d %12lld %14lld %12.3f\n", grid[0],
                grid[1], grid[2], grid[3], pg.size(),
                static_cast<long long>(vc.stats().messages / reps),
                static_cast<long long>(vc.stats().bytes / reps), ms);
  }

  std::printf("\nT3b (modeled): per-node dslash halo traffic vs local "
              "volume (double, half-spinor halos, fully decomposed)\n");
  std::printf("%14s | %12s %8s | %12s %12s %12s\n", "local volume",
              "halo bytes", "msgs", "BG/Q t[us]", "K t[us]",
              "cluster t[us]");
  PerfModelOptions opt;
  const std::vector<Coord> locals =
      quick ? std::vector<Coord>{Coord{4, 4, 4, 4}, Coord{8, 8, 8, 8}}
            : std::vector<Coord>{Coord{4, 4, 4, 4}, Coord{8, 8, 8, 8},
                                 Coord{16, 16, 16, 16},
                                 Coord{24, 24, 24, 24}};
  for (const Coord local : locals) {
    const Coord grid{2, 2, 2, 2};
    const DslashCost bgq = model_dslash(local, grid, blue_gene_q(), opt);
    const DslashCost k = model_dslash(local, grid, k_computer(), opt);
    const DslashCost cl =
        model_dslash(local, grid, generic_cluster(), opt);
    std::printf("%5dx%dx%dx%-4d | %12.0f %8d | %12.2f %12.2f %12.2f\n",
                local[0], local[1], local[2], local[3], bgq.comm_bytes,
                bgq.messages, bgq.t_comm * 1e6, k.t_comm * 1e6,
                cl.t_comm * 1e6);
  }

  // The un-overlapped serial sum vs the overlap-adjusted total. The
  // hidden fraction is capped by both the overlap knob and the interior
  // fraction (share of sites computable while halos are in flight).
  std::printf("\nT3b' (modeled): overlap-adjusted dslash time, grid "
              "2x2x2x2 (overlap knob %.2f)\n", opt.overlap);
  std::printf("%14s %8s | %12s %12s %8s %8s\n", "local volume",
              "machine", "t_seq[us]", "t_total[us]", "hidden", "interior");
  for (const Coord local : locals) {
    const Coord grid{2, 2, 2, 2};
    struct { const char* name; MachineModel m; } machines[] = {
        {"bgq", blue_gene_q()}, {"k", k_computer()},
        {"cluster", generic_cluster()}};
    for (const auto& mm : machines) {
      const DslashCost c = model_dslash(local, grid, mm.m, opt);
      std::printf("%5dx%dx%dx%-4d %8s | %12.2f %12.2f %8.3f %8.3f\n",
                  local[0], local[1], local[2], local[3], mm.name,
                  c.t_sequential * 1e6, c.t_total * 1e6,
                  c.hidden_fraction, c.interior_fraction);
    }
  }
  std::printf("\nShape: halo bytes scale with the local surface "
              "(volume^(3/4) per direction); at small local volumes the "
              "per-message latency floor dominates — the same effect that "
              "bends the strong-scaling curve in F1. Overlap recovers at "
              "most the interior-window share of comm; thin local extents "
              "(<= 2 sites) have no interior and hide nothing. The "
              "functional counts in T3a are exact and match what the "
              "model charges per exchange.\n");

  // T3c: the telemetry counters charged by the exchanges above, diffed
  // against the model for the fully decomposed grid. The virtual cluster
  // ships full 24-real double spinors, so the mapping is exact; the
  // documented tolerance is 1%.
  std::printf("\nT3c (telemetry): achieved comm.halo.bytes vs model, "
              "grid 2x2x2x2\n");
  telemetry::set_enabled(true);
  telemetry::Counter& c_bytes = telemetry::counter("comm.halo.bytes");
  telemetry::Counter& c_exch = telemetry::counter("comm.halo.exchanges");
  const std::int64_t bytes0 = c_bytes.value();
  const std::int64_t exch0 = c_exch.value();
  const ProcessGrid pg({2, 2, 2, 2});
  VirtualCluster<double> vc(geo, pg);
  auto f = vc.make_fermion();
  for (int i = 0; i < reps; ++i) vc.exchange(f);
  const double achieved_per_exchange =
      static_cast<double>(c_bytes.value() - bytes0) /
      static_cast<double>(c_exch.value() - exch0);

  PerfModelOptions exact;
  exact.precision_bytes = 8;
  exact.half_spinor_comm = false;
  Coord local{};
  for (int mu = 0; mu < Nd; ++mu) local[mu] = geo.dim(mu) / 2;
  const DslashCost model =
      model_dslash(local, {2, 2, 2, 2}, blue_gene_q(), exact);
  const double model_per_exchange =
      model.comm_bytes * static_cast<double>(pg.size());
  std::printf("bytes/exchange: achieved %.0f, model %.0f (ratio %.4f, "
              "tolerance 1%%)\n",
              achieved_per_exchange, model_per_exchange,
              achieved_per_exchange / model_per_exchange);

  // T3d: measured split-phase overlap. The distributed Wilson operator
  // times its four phases (begin / interior / finish / surface); the
  // serial sum is what the blocking schedule costs, the overlapped
  // total subtracts the comm time hidden behind the interior window.
  // bench_dslash --overlap compares these fractions against the model.
  std::printf("\nT3d (measured): split-phase dslash, serial sum vs "
              "overlap-adjusted total\n");
  std::printf("%12s %8s %12s %12s %8s\n", "grid", "ranks", "t_seq[ms]",
              "t_ovl[ms]", "hidden");
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(11));
  FermionFieldD fin(geo), fout(geo);
  for (auto& s : fin.span()) s.s[0].c[0] = Cplxd(1.0);
  std::vector<Coord> ogrids{Coord{2, 1, 1, 2}};
  if (!quick) ogrids.push_back(Coord{2, 2, 2, 2});
  std::vector<OverlapRow> orows;
  for (const Coord grid : ogrids) {
    DistributedWilsonOperator<double> op(u, 0.12, ProcessGrid(grid));
    op.apply(fout.span(), fin.span());  // warm-up
    op.reset_overlap_stats();
    for (int i = 0; i < reps; ++i) op.apply(fout.span(), fin.span());
    const OverlapStats& ov = op.overlap_stats();
    const double n = static_cast<double>(ov.applies);
    OverlapRow row;
    row.grid = grid;
    row.ranks = ProcessGrid(grid).size();
    row.t_seq_ms = ov.t_sequential_s() * 1e3 / n;
    row.t_ovl_ms = ov.t_overlapped_s() * 1e3 / n;
    row.hidden = ov.hidden_fraction();
    orows.push_back(row);
    std::printf("%5dx%dx%dx%-3d %8d %12.3f %12.3f %8.3f\n", grid[0],
                grid[1], grid[2], grid[3], row.ranks, row.t_seq_ms,
                row.t_ovl_ms, row.hidden);
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.comm/1\",\n"
       << "  \"telemetry_schema\": \"" << telemetry::kSchema << "\",\n"
       << "  \"experiment\": \"halo-exchange-counts\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"grid\": [2, 2, 2, 2],\n"
       << "  \"achieved_halo_bytes_per_exchange\": "
       << achieved_per_exchange << ",\n"
       << "  \"model_halo_bytes_per_exchange\": " << model_per_exchange
       << ",\n"
       << "  \"model_tolerance_pct\": 1.0,\n"
       << "  \"model_t_sequential_us\": " << model.t_sequential * 1e6
       << ",\n"
       << "  \"model_t_total_us\": " << model.t_total * 1e6 << ",\n"
       << "  \"model_hidden_fraction\": " << model.hidden_fraction
       << ",\n"
       << "  \"overlap_measured\": [\n";
    for (std::size_t i = 0; i < orows.size(); ++i) {
      const OverlapRow& r = orows[i];
      js << "    {\"grid\": [" << r.grid[0] << ", " << r.grid[1] << ", "
         << r.grid[2] << ", " << r.grid[3] << "], \"ranks\": " << r.ranks
         << ", \"t_sequential_ms\": " << r.t_seq_ms
         << ", \"t_overlapped_ms\": " << r.t_ovl_ms
         << ", \"hidden_fraction\": " << r.hidden << "}"
         << (i + 1 < orows.size() ? "," : "") << "\n";
    }
    js << "  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!report_path.empty()) {
    telemetry::write_report(report_path);
    std::printf("telemetry report -> %s\n", report_path.c_str());
  }
  return 0;
}
