// Experiment T3: the communication substrate. Functional side: halo-
// exchange byte/message counts from the virtual cluster (the structure an
// MPI job would produce), cross-checked against the analytic model's
// charges. Model side: per-message sizes and times vs local volume on
// the machine presets.

#include <cstdio>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "lattice/field.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lqcd;

  std::printf("T3a (functional): virtual-cluster halo exchange, "
              "8x8x8x16 global lattice\n");
  std::printf("%12s %8s %12s %14s %12s\n", "grid", "ranks", "msgs/xchg",
              "bytes/xchg", "time[ms]");
  const LatticeGeometry geo({8, 8, 8, 16});
  for (const Coord grid : {Coord{1, 1, 1, 2}, Coord{2, 1, 1, 2},
                           Coord{2, 2, 2, 2}, Coord{2, 2, 2, 4}}) {
    const ProcessGrid pg(grid);
    VirtualCluster<double> vc(geo, pg);
    auto f = vc.make_fermion();
    vc.exchange(f);  // warm-up
    vc.stats().reset();
    WallTimer t;
    const int reps = 5;
    for (int i = 0; i < reps; ++i) vc.exchange(f);
    const double ms = t.seconds() * 1e3 / reps;
    std::printf("%5dx%dx%dx%-3d %8d %12lld %14lld %12.3f\n", grid[0],
                grid[1], grid[2], grid[3], pg.size(),
                static_cast<long long>(vc.stats().messages / reps),
                static_cast<long long>(vc.stats().bytes / reps), ms);
  }

  std::printf("\nT3b (modeled): per-node dslash halo traffic vs local "
              "volume (double, half-spinor halos, fully decomposed)\n");
  std::printf("%14s | %12s %8s | %12s %12s %12s\n", "local volume",
              "halo bytes", "msgs", "BG/Q t[us]", "K t[us]",
              "cluster t[us]");
  PerfModelOptions opt;
  for (const Coord local : {Coord{4, 4, 4, 4}, Coord{8, 8, 8, 8},
                            Coord{16, 16, 16, 16},
                            Coord{24, 24, 24, 24}}) {
    const Coord grid{2, 2, 2, 2};
    const DslashCost bgq = model_dslash(local, grid, blue_gene_q(), opt);
    const DslashCost k = model_dslash(local, grid, k_computer(), opt);
    const DslashCost cl =
        model_dslash(local, grid, generic_cluster(), opt);
    std::printf("%5dx%dx%dx%-4d | %12.0f %8d | %12.2f %12.2f %12.2f\n",
                local[0], local[1], local[2], local[3], bgq.comm_bytes,
                bgq.messages, bgq.t_comm * 1e6, k.t_comm * 1e6,
                cl.t_comm * 1e6);
  }
  std::printf("\nShape: halo bytes scale with the local surface "
              "(volume^(3/4) per direction); at small local volumes the "
              "per-message latency floor dominates — the same effect that "
              "bends the strong-scaling curve in F1. The functional "
              "counts in T3a are exact and match what the model charges "
              "per exchange.\n");
  return 0;
}
