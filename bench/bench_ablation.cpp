// Experiment F6: ablations of the two structural optimizations every
// production dslash ships — (a) the spin-projection trick (vs the naive
// dense-gamma kernel) and (b) even-odd preconditioning (vs CG on the
// full normal system). Measured kernel times and iteration counts.
//
// --json <path> records the speedups and iteration counts; --quick
// shrinks the lattice and kappa sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dirac/eo.hpp"
#include "dirac/naive.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/multishift_cg.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  using namespace lqcd::bench;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 50, quick ? 6 : 8);
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);

  std::printf("F6a: spin projection ablation (%dx%dx%dx%d dslash, "
              "double)\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3));
  FermionFieldD in(geo), out(geo);
  fill_gaussian(in.span(), 51);
  const int reps = quick ? 5 : 20;
  WallTimer t1;
  for (int i = 0; i < reps; ++i)
    dslash_full(out.span(), cspan(in.span()), links);
  const double proj_ms = t1.seconds() * 1e3 / reps;
  WallTimer t2;
  for (int i = 0; i < reps; ++i)
    dslash_full_naive(out.span(), cspan(in.span()), links);
  const double naive_ms = t2.seconds() * 1e3 / reps;
  std::printf("%22s %12s %14s\n", "kernel", "time[ms]", "GFLOP/s(eff)");
  const double vol = static_cast<double>(geo.volume());
  std::printf("%22s %12.3f %14.2f\n", "projected (1320 f/s)", proj_ms,
              1320.0 * vol / (proj_ms * 1e-3) * 1e-9);
  std::printf("%22s %12.3f %14.2f\n", "naive dense gamma", naive_ms,
              1320.0 * vol / (naive_ms * 1e-3) * 1e-9);
  const double proj_speedup = naive_ms / proj_ms;
  std::printf("speedup from projection: %.2fx\n", proj_speedup);

  std::printf("\nF6b: even-odd preconditioning ablation (CG on normal "
              "equations, tol=1e-8)\n");
  std::printf("%8s | %12s %10s | %12s %10s | %9s\n", "kappa", "full iters",
              "full[ms]", "eo iters", "eo[ms]", "speedup");
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 52);
  const auto hv = static_cast<std::size_t>(geo.half_volume());
  SolverParams p{.tol = 1e-8, .max_iterations = 20000};
  const std::vector<double> kappas =
      quick ? std::vector<double>{0.118}
            : std::vector<double>{0.105, 0.118, 0.124};
  std::string json_rows;
  for (const double kappa : kappas) {
    WilsonOperator<double> m(u, kappa);
    NormalOperator<double> nm(m);
    FermionFieldD x(geo);
    const SolverResult rf = cg_solve<double>(nm, x.span(), b.span(), p);

    SchurWilsonOperator<double> shat(u, kappa);
    NormalOperator<double> nhat(shat);
    aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
    shat.prepare_rhs({bhat.data(), hv}, b.span());
    apply_dagger_g5<double>(shat, {bhat2.data(), hv}, {bhat.data(), hv},
                            {tmp.data(), hv});
    const SolverResult rs = cg_solve<double>(
        nhat, {xo.data(), hv},
        std::span<const WilsonSpinorD>(bhat2.data(), hv), p);

    std::printf("%8.3f | %12d %10.2f | %12d %10.2f | %8.2fx%s\n", kappa,
                rf.iterations, rf.seconds * 1e3, rs.iterations,
                rs.seconds * 1e3,
                rs.seconds > 0 ? rf.seconds / rs.seconds : 0.0,
                (rf.converged && rs.converged) ? "" : "  [!]");
    char row[160];
    std::snprintf(row, sizeof(row),
                  "    {\"kappa\": %.3f, \"full_iters\": %d, "
                  "\"eo_iters\": %d, \"converged\": %s}",
                  kappa, rf.iterations, rs.iterations,
                  (rf.converged && rs.converged) ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += row;
  }
  std::printf("\nF6c: multishift CG ablation — one shifted Krylov space vs "
              "sequential solves (4 twisted masses, tol=1e-8)\n");
  double multishift_speedup = 0.0;
  {
    WilsonOperator<double> m(u, 0.12);
    NormalOperator<double> nm(m);
    const std::vector<double> shifts = {0.0, 0.04, 0.25, 1.0};
    std::vector<aligned_vector<WilsonSpinorD>> xs(shifts.size());
    WallTimer t_ms;
    const MultiShiftResult rms =
        multishift_cg_solve<double>(nm, shifts, xs, b.span(), p);
    const double ms_time = t_ms.seconds() * 1e3;
    WallTimer t_seq;
    int seq_iters = 0;
    for (const double sigma : shifts) {
      ShiftedOperator<double> as(nm, sigma);
      FermionFieldD x(geo);
      seq_iters += cg_solve<double>(as, x.span(), b.span(), p).iterations;
    }
    const double seq_time = t_seq.seconds() * 1e3;
    std::printf("%16s %8d iters %10.2f ms\n", "multishift", rms.iterations,
                ms_time);
    std::printf("%16s %8d iters %10.2f ms\n", "sequential", seq_iters,
                seq_time);
    multishift_speedup = ms_time > 0 ? seq_time / ms_time : 0.0;
    std::printf("speedup: %.2fx\n", multishift_speedup);
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.ablation/1\",\n"
       << "  \"experiment\": \"structural-ablations\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"projection_speedup\": " << proj_speedup << ",\n"
       << "  \"multishift_speedup\": " << multishift_speedup << ",\n"
       << "  \"eo\": [\n" << json_rows << "\n  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: projection wins ~1.5-2x on kernel time (half the "
              "SU(3) multiplies); even-odd wins 2-3x end to end (half the "
              "volume per apply x fewer iterations from the improved "
              "condition number) — compounding to the familiar 3-4x over "
              "a naive implementation.\n");
  return 0;
}
