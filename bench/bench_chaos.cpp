// Experiment T8: chaos soak for the campaign service's failure envelope.
//
// S seeded mini-campaigns (1 config x 2 kappas x 2 sources over 2 lanes)
// each run under a randomized *composed* fault schedule drawn from a
// counter RNG: process kills at increasing epochs, permanent lane deaths,
// capped transient drops, whole-task straggles (speculation drills), torn
// garbage appended to the journal tail after a crash, and mid-campaign
// journal compaction. Every campaign is driven to a verdict through a
// kill/resume lives loop, and the soak asserts the service's whole
// robustness contract:
//
//   1. Completion: every surviving campaign journals physics payloads
//      byte-identical to a fault-free reference run — exactly one
//      TaskDone per task, regardless of which lane (or replica) ran it.
//      The one sanctioned deviation: a task that survived an injected
//      transient drop retried on the scalar recovery pipeline (eo_cg, by
//      design — see serve/service.hpp), so its payload records the retry
//      and its correlator agrees with the reference to solver tolerance
//      instead of bit-for-bit.
//   2. No recompute: across every resume boundary, a task that was done
//      before the crash never gets another TaskRunning frame after it.
//   3. Clean failure: a campaign whose lanes all die raises FatalError,
//      and its journal still replays (status works, a resume re-raises
//      FatalError rather than corrupting state).
//   4. Compaction is invisible: `status` before == after, resumes skip.
//
// Drop budgets are capped below max_retries, so FatalError can only mean
// "every lane is dead" — any other escalation is an invariant failure.
// Torn-tail injection only ever *appends* garbage (the torn-write model:
// a crash can lose the frame being written, never an fsync'd prefix), so
// finished tasks are never silently un-finished.
//
// --quick runs 5 seeds on the default 4^4 lattice; --json <path> writes
// the machine-readable artifact (bench/BENCH_chaos.json is a reference).
// Exit code 1 when any invariant fails.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/fault.hpp"
#include "gauge/io.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

/// One seed's randomized composed fault schedule.
struct ChaosSchedule {
  std::vector<std::pair<int, std::uint64_t>> kills;  // one per life
  std::vector<std::pair<int, std::uint64_t>> lane_deaths;
  double drop_prob = 0.0;
  std::int64_t drop_budget = 0;
  int straggle_lane = -1;  // -1: no straggle fault
  bool torn_tail = false;  // append garbage after each crash
  bool compact_mid = false;  // compact the journal between lives
};

/// Draw a schedule from the soak's counter RNG. All-lanes-dead schedules
/// are drawn deliberately (~1 in 6) to exercise the FatalError path.
ChaosSchedule draw_schedule(std::uint64_t soak_seed, int campaign_seed,
                            int lanes) {
  CounterRng rng(soak_seed, static_cast<std::uint64_t>(campaign_seed));
  ChaosSchedule s;
  const int nkills = static_cast<int>(rng.next_u64() % 3);  // 0..2
  std::uint64_t epoch = 1 + rng.next_u64() % 3;
  for (int k = 0; k < nkills; ++k) {
    s.kills.emplace_back(static_cast<int>(rng.next_u64() %
                                          static_cast<std::uint64_t>(lanes)),
                         epoch);
    epoch += 2 + rng.next_u64() % 3;  // strictly increasing
  }
  const double death_roll = rng.uniform();
  if (death_roll < 1.0 / 6.0) {  // total-loss drill
    for (int l = 0; l < lanes; ++l)
      s.lane_deaths.emplace_back(l, rng.next_u64() % 4);
  } else if (death_roll < 0.55) {  // lose one lane, survive degraded
    s.lane_deaths.emplace_back(
        static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(lanes)),
        rng.next_u64() % 6);
  }
  if (rng.uniform() < 0.5) {
    s.drop_prob = 0.3;
    s.drop_budget = 1 + static_cast<std::int64_t>(rng.next_u64() % 3);
  }
  if (rng.uniform() < 0.4)
    s.straggle_lane = static_cast<int>(rng.next_u64() %
                                       static_cast<std::uint64_t>(lanes));
  s.torn_tail = rng.uniform() < 0.5;
  s.compact_mid = rng.uniform() < 0.4;
  return s;
}

/// Append garbage to the journal tail: a torn half-frame plus noise. Only
/// ever appends — the fsync'd prefix (finished tasks) must survive.
void tear_journal_tail(const std::string& path, std::uint64_t salt) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  CounterRng rng(salt, 0xdead);
  std::string junk = "LQJR";  // looks like a frame head, then lies
  const int n = 3 + static_cast<int>(rng.next_u64() % 16);
  for (int i = 0; i < n; ++i)
    junk.push_back(static_cast<char>(rng.next_u64() & 0xff));
  os.write(junk.data(), static_cast<std::streamsize>(junk.size()));
}

std::map<int, std::string> done_payloads(const std::string& journal) {
  std::map<int, std::string> out;
  for (const serve::Record& r : serve::replay_journal(journal).records)
    if (r.type == serve::RecordType::TaskDone) {
      const int id = json::Value::parse(r.payload).get_or("task", -1);
      if (!out.count(id)) out[id] = r.payload;  // first wins
    }
  return out;
}

/// Tasks with at least one TaskFailed frame: these retried on the scalar
/// recovery pipeline, the one sanctioned payload deviation.
std::set<int> retried_tasks(const std::string& journal) {
  std::set<int> out;
  for (const serve::Record& r : serve::replay_journal(journal).records)
    if (r.type == serve::RecordType::TaskFailed)
      out.insert(json::Value::parse(r.payload).get_or("task", -1));
  return out;
}

/// Same physics as the reference payload: identical task identity and a
/// pion correlator matching to solver tolerance (both pipelines converged
/// to 1e-7; 1e-4 relative leaves two decades of slack).
bool physics_equivalent(const std::string& got_raw,
                        const std::string& want_raw) {
  const json::Value got = json::Value::parse(got_raw);
  const json::Value want = json::Value::parse(want_raw);
  for (const char* key : {"config", "source"})
    if (got.at(key).as_string() != want.at(key).as_string()) return false;
  if (got.at("kappa").as_double() != want.at("kappa").as_double())
    return false;
  const json::Value& a = got.at("pion");
  const json::Value& b = want.at("pion");
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    const double x = a[t].as_double(), y = b[t].as_double();
    if (std::abs(x - y) > 1e-4 * (1.0 + std::abs(x) + std::abs(y)))
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const bool quick = cli.get_flag("quick");
  const int seeds = cli.get_int("seeds", quick ? 5 : 20);
  const int L = cli.get_int("L", 4);
  const int T = cli.get_int("T", 4);
  const double beta = cli.get_double("beta", 5.9);
  const std::uint64_t soak_seed =
      static_cast<std::uint64_t>(cli.get_long("seed", 1913));
  const std::string json_path = cli.get_string("json", "");
  cli.finish();

  telemetry::set_enabled(true);
  const std::string root = "bench_chaos_out";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const LatticeGeometry geo({L, L, L, T});
  const std::string cfg_path = root + "/config_0.lqcd";
  save_gauge(bench::thermalized(geo, beta, 83), cfg_path, beta);

  const auto make_spec = [&](const std::string& output) {
    serve::CampaignSpec spec;
    spec.name = "chaos";
    spec.configs = {cfg_path};
    spec.kappas = {0.110, 0.115};
    spec.sources = {"point:0,0,0,0", "wall:0"};
    spec.tol = 1e-7;
    spec.block = 4;
    spec.ranks = 2;
    spec.max_retries = 4;  // above every drop budget: only lane loss kills
    spec.output = output;
    return spec;
  };

  bench::rule("T8: chaos soak — fault-free reference");
  WallTimer ref_timer;
  serve::CampaignService reference(make_spec(root + "/reference"));
  const serve::CampaignOutcome ref_out = reference.run();
  const double clean_seconds = ref_timer.seconds();
  const std::map<int, std::string> ref_payloads =
      done_payloads(reference.journal_path());
  std::printf("reference: %d tasks in %.2fs\n", ref_out.total,
              clean_seconds);

  bench::rule("T8: chaos soak — seeded fault campaigns");
  int completed = 0, fatal = 0, invariant_failures = 0;
  int torn_journals = 0, compactions = 0;
  int speculative_tasks = 0, speculative_wins = 0;
  double faulted_seconds_sum = 0.0;
  constexpr int kMaxLives = 12;

  for (int seed = 0; seed < seeds; ++seed) {
    const ChaosSchedule sched =
        draw_schedule(soak_seed, seed, /*lanes=*/2);
    const std::string dir = root + "/seed_" + std::to_string(seed);
    const serve::CampaignSpec spec = make_spec(dir);
    const std::string journal = dir + "/journal.lqj";
    const auto fail = [&](const std::string& why) {
      ++invariant_failures;
      std::printf("seed %d: INVARIANT FAILED: %s\n", seed, why.c_str());
    };

    bool finished = false, saw_fatal = false;
    int lives = 0;
    std::size_t kills_used = 0;
    WallTimer seed_timer;
    while (!finished && !saw_fatal && lives < kMaxLives) {
      // No-recompute snapshot at this resume boundary.
      const std::map<int, std::string> done_before = done_payloads(journal);
      const std::size_t frames_before =
          serve::replay_journal(journal).records.size();

      FaultSpec base;
      base.drop_prob = sched.drop_prob;
      FaultInjector faults(soak_seed ^ static_cast<std::uint64_t>(seed),
                           base);
      if (sched.drop_prob > 0.0) faults.set_event_budget(sched.drop_budget);
      if (sched.straggle_lane >= 0) {
        FaultSpec straggly = base;
        straggly.task_straggle_prob = 0.6;
        straggly.task_straggle_mult = 8.0;
        faults.set_rank_spec(sched.straggle_lane, straggly);
        if (sched.drop_prob <= 0.0) faults.set_event_budget(3);
      }
      for (const auto& [lane, epoch] : sched.lane_deaths)
        faults.schedule_lane_death(lane, epoch);
      // One scheduled kill per life, in order: a fired kill must not
      // re-arm on resume (its epoch slot recurs once the task reruns).
      if (kills_used < sched.kills.size())
        faults.schedule_kill(sched.kills[kills_used].first,
                             sched.kills[kills_used].second);

      try {
        serve::CampaignService service(spec, {.faults = &faults});
        const serve::CampaignOutcome out = service.run();
        finished = true;
        speculative_tasks += out.speculative_tasks;
        speculative_wins += out.speculative_wins;
      } catch (const TransientError&) {
        ++kills_used;  // killed mid-campaign: resume in the next life
        if (sched.torn_tail) {
          tear_journal_tail(journal,
                            soak_seed ^ static_cast<std::uint64_t>(
                                seed * 977 + lives));
          ++torn_journals;
        }
        if (sched.compact_mid) {
          const serve::CampaignStatus before =
              serve::CampaignService::status(journal);
          (void)serve::compact_journal(journal);
          ++compactions;
          const serve::CampaignStatus after =
              serve::CampaignService::status(journal);
          if (after.done != before.done ||
              after.failed_attempts != before.failed_attempts ||
              after.in_flight != before.in_flight ||
              after.lanes_lost != before.lanes_lost ||
              after.tasks_reassigned != before.tasks_reassigned ||
              after.fingerprint != before.fingerprint)
            fail("compaction changed status");
        }
      } catch (const FatalError&) {
        saw_fatal = true;
      }
      ++lives;

      // No-recompute check: nothing done before this life may get a new
      // Running frame after it (compaction re-sequences, so compare
      // against the surviving frame count, which only shrinks).
      const auto records = serve::replay_journal(journal).records;
      const std::size_t boundary =
          std::min(frames_before, records.size());
      for (std::size_t i = boundary; i < records.size(); ++i)
        if (records[i].type == serve::RecordType::TaskRunning) {
          const int id =
              json::Value::parse(records[i].payload).get_or("task", -1);
          if (done_before.count(id))
            fail("task " + std::to_string(id) + " recomputed in life " +
                 std::to_string(lives));
        }
    }
    if (finished) {
      faulted_seconds_sum += seed_timer.seconds();  // completed runs only
      ++completed;
      const auto payloads = done_payloads(journal);
      const std::set<int> retried = retried_tasks(journal);
      for (const auto& [id, want] : ref_payloads) {
        const auto it = payloads.find(id);
        if (it == payloads.end()) {
          fail("task " + std::to_string(id) + " missing from results");
        } else if (retried.count(id)) {
          if (!physics_equivalent(it->second, want))
            fail("retried task " + std::to_string(id) +
                 " physics differs from reference");
        } else if (it->second != want) {
          fail("task " + std::to_string(id) +
               " payload not byte-identical to fault-free reference");
        }
      }
      int done_frames = 0;
      std::set<int> distinct;
      for (const serve::Record& r : serve::replay_journal(journal).records)
        if (r.type == serve::RecordType::TaskDone) {
          ++done_frames;
          distinct.insert(json::Value::parse(r.payload).get_or("task", -1));
        }
      if (done_frames != static_cast<int>(distinct.size()) ||
          done_frames != ref_out.total)
        fail("duplicate or missing TaskDone frames");
    } else if (saw_fatal) {
      ++fatal;
      // A fatal campaign must have died loudly *and* cleanly: every lane
      // dead per the schedule, journal still replayable, resume re-fatal.
      if (sched.lane_deaths.size() < 2)
        fail("FatalError without an all-lanes-dead schedule");
      const serve::CampaignStatus st =
          serve::CampaignService::status(journal);
      if (!st.journal_found || st.finished)
        fail("fatal campaign journal does not replay");
      try {
        serve::CampaignService resumed(spec);
        (void)resumed.run();
        fail("resume after total lane loss did not re-raise FatalError");
      } catch (const FatalError&) {
        // expected: lane deaths are journaled, the loss is permanent
      }
    } else {
      fail("campaign did not reach a verdict in " +
           std::to_string(kMaxLives) + " lives");
    }
    std::printf("seed %2d: %s after %d lives (kills %zu/%zu, deaths %zu, "
                "drop %.1f, straggle lane %d%s%s)\n",
                seed, finished ? "completed" : "fatal", lives, kills_used,
                sched.kills.size(), sched.lane_deaths.size(),
                sched.drop_prob, sched.straggle_lane,
                sched.torn_tail ? ", torn tails" : "",
                sched.compact_mid ? ", compacted" : "");
  }

  const auto count = [](const char* name) {
    return telemetry::counter(name).value();
  };
  const double mean_faulted =
      completed > 0 ? faulted_seconds_sum / completed : 0.0;
  const double overhead =
      clean_seconds > 0.0 ? mean_faulted / clean_seconds : 0.0;
  const bool all_pass = invariant_failures == 0;

  bench::rule("T8: verdict");
  std::printf("%d seeds: %d completed, %d fatal (all-lanes-dead), "
              "%d invariant failures\n",
              seeds, completed, fatal, invariant_failures);
  std::printf("faults: kills=%lld lane_deaths=%lld reassigned=%lld "
              "speculative=%d wins=%d torn=%d compactions=%d\n",
              static_cast<long long>(count("serve.kills")),
              static_cast<long long>(count("serve.lane_deaths")),
              static_cast<long long>(count("serve.tasks_reassigned")),
              speculative_tasks, speculative_wins, torn_journals,
              compactions);
  std::printf("recovery overhead: mean faulted campaign %.2fs vs clean "
              "%.2fs (%.2fx)\n",
              mean_faulted, clean_seconds, overhead);
  std::printf("%s\n", all_pass ? "ALL INVARIANTS PASS"
                               : "INVARIANT FAILURES — see above");

  if (!json_path.empty()) {
    json::Writer w;
    w.begin_object()
        .field("schema", "lqcd.bench.chaos/1")
        .field("experiment", "lane-failure-chaos-soak");
    w.key("lattice").begin_array();
    for (const int d : {L, L, L, T}) w.value(d);
    w.end_array();
    w.field("seeds", seeds)
        .field("completed", completed)
        .field("fatal", fatal)
        .field("invariant_failures", invariant_failures)
        .field("all_invariants_pass", all_pass)
        .field("kills", count("serve.kills"))
        .field("lane_deaths", count("serve.lane_deaths"))
        .field("tasks_reassigned", count("serve.tasks_reassigned"))
        .field("speculative_tasks", speculative_tasks)
        .field("speculative_wins", speculative_wins)
        .field("torn_journals", torn_journals)
        .field("compactions", compactions)
        .field("clean_seconds", clean_seconds)
        .field("mean_faulted_seconds", mean_faulted)
        .field("recovery_overhead", overhead)
        .end_object();
    bench::write_json(json_path, w);
  }
  return all_pass ? 0 : 1;
}
