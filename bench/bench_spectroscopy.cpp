// Experiment F5: the end-to-end "origin of mass" measurement — hadron
// correlators and effective masses on a quenched configuration, with the
// exact free-field curve overlaid and the wall-time budget broken down by
// phase (generation / solves / contractions), as production campaign
// tables report.
//
// --json <path> records the plateau masses and time budget; --quick
// shortens the time extent and thermalization for CI smoke runs.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "spectro/free_field.hpp"
#include "staggered/staggered.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const int L = 4, T = quick ? 8 : 16;
  const double beta = 5.9, kappa = 0.150;

  std::printf("F5: spectroscopy on %d^3 x %d, beta=%.1f, kappa=%.3f\n", L,
              T, beta, kappa);

  WallTimer t_total;
  Context ctx({L, L, L, T}, 777);
  EnsembleGenerator gen(ctx, {.beta = beta,
                              .or_per_hb = 2,
                              .thermalization_sweeps = quick ? 8 : 15,
                              .sweeps_between_configs = 0});
  WallTimer t_gen;
  const GaugeFieldD& u = gen.next_config();
  const double gen_s = t_gen.seconds();

  SpectroscopyParams sp;
  sp.propagator.kappa = kappa;
  sp.propagator.solver.tol = 1e-9;
  sp.plateau_t_min = quick ? 2 : 3;
  sp.plateau_t_max = T / 2 - 2;
  WallTimer t_meas;
  const SpectroscopyResult res = run_spectroscopy(u, sp);
  const double meas_s = t_meas.seconds();

  // The free-theory overlay only exists below the free critical point
  // kappa_c = 1/8; on a thermalized lattice kappa_c shifts upward, so the
  // interacting run can use a larger kappa. Overlay a lighter free kappa
  // for shape comparison in that case.
  const double kappa_free = std::min(kappa, 0.120);
  const auto free_ref = free_pion_correlator({L, L, L, T}, kappa_free);
  const auto meff_pi = effective_mass_cosh(res.pion.c);
  const auto meff_rho = effective_mass_cosh(res.rho.c);
  std::vector<double> nuc_abs(res.nucleon.c.size());
  for (std::size_t i = 0; i < nuc_abs.size(); ++i)
    nuc_abs[i] = std::abs(res.nucleon.c[i]);
  const auto meff_n = effective_mass_log(nuc_abs);

  std::printf("\n%3s %13s %13s %13s | %9s %9s %9s\n", "t", "C_pi", "C_rho",
              "C_pi(free)", "m_pi(t)", "m_rho(t)", "m_N(t)");
  for (int t = 0; t < T; ++t) {
    const auto ts = static_cast<std::size_t>(t);
    const double mpi = t < T - 1 ? meff_pi[ts] : NAN;
    const double mrho = t < T - 1 ? meff_rho[ts] : NAN;
    const double mn = t < T - 1 ? meff_n[ts] : NAN;
    std::printf("%3d %13.5e %13.5e %13.5e | %9.4f %9.4f %9.4f\n", t,
                res.pion.c[ts], res.rho.c[ts], free_ref[ts], mpi, mrho,
                mn);
  }

  std::printf("\nplateau masses (window [%d, %d]):\n", sp.plateau_t_min,
              sp.plateau_t_max);
  std::printf("  m_pi  = %.4f (spread %.4f)\n", res.pion_mass.mass,
              res.pion_mass.spread);
  std::printf("  m_rho = %.4f (spread %.4f)\n", res.rho_mass.mass,
              res.rho_mass.spread);
  std::printf("  m_N   = %.4f (spread %.4f)\n", res.nucleon_mass.mass,
              res.nucleon_mass.spread);
  std::printf("  free-quark reference (kappa=%.3f): 2 m_q = %.4f\n",
              kappa_free, 2.0 * free_quark_mass(kappa_free));

  // Baseline discretization: staggered (MILC-style) Goldstone pion on
  // the same configuration. Different lattice artifacts, same physics
  // channel — the classic cross-discretization consistency check.
  WallTimer t_stag;
  const StaggeredPionResult stag =
      staggered_pion_correlator(u, 0.3, {0, 0, 0, 0}, 1e-9);
  const double stag_s = t_stag.seconds();
  std::printf("\nstaggered baseline (m_q = 0.3): C(1..4) =");
  for (int t = 1; t <= 4; ++t) std::printf(" %.3e", stag.correlator[t]);
  std::printf("\n  even-slice m_pi = %.4f, %d CG iterations over 3 "
              "colors, %.2fs (vs %.2fs for 12 Wilson columns)\n",
              0.5 * std::log(stag.correlator[4] /
                             stag.correlator[std::min<std::size_t>(
                                 6, stag.correlator.size() - 1)]),
              stag.total_iterations, stag_s, meas_s);

  const double total_s = t_total.seconds();
  std::printf("\ntime budget: generation %.2fs (%.0f%%), solves+"
              "contractions %.2fs (%.0f%%), total %.2fs; %d CG "
              "iterations over 12 columns\n",
              gen_s, 100.0 * gen_s / total_s, meas_s,
              100.0 * meas_s / total_s, total_s,
              res.solve_stats.total_iterations);

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.spectroscopy/1\",\n"
       << "  \"experiment\": \"hadron-spectrum\",\n"
       << "  \"lattice\": [" << L << ", " << L << ", " << L << ", " << T
       << "],\n"
       << "  \"kappa\": " << kappa << ",\n"
       << "  \"m_pi\": " << res.pion_mass.mass << ",\n"
       << "  \"m_rho\": " << res.rho_mass.mass << ",\n"
       << "  \"m_nucleon\": " << res.nucleon_mass.mass << ",\n"
       << "  \"solve_iterations\": " << res.solve_stats.total_iterations
       << ",\n"
       << "  \"total_seconds\": " << total_s << "\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: m_pi < m_rho < m_N with interactions switched on; "
              "the measured pion correlator sits below the free curve at "
              "large t (binding). Solve time dominates the budget — the "
              "motivation for every solver optimization in this "
              "library.\n");
  return 0;
}
