// Experiment T5: what the telemetry subsystem costs, and whether its
// hot-path counters agree with the analytic performance model.
//
//  T5a  overhead — the same dslash + CG workload run with telemetry
//       collecting and with collection disabled (set_enabled(false), the
//       LQCD_TELEMETRY=off path). Phases are interleaved inside each rep
//       and the median of paired ratios is reported, the same
//       methodology as bench_resilience. The contract is <= 2% overhead:
//       counters are relaxed atomics behind one branch, charged per
//       apply/exchange/solve — never inside parallel_for bodies.
//  T5b  achieved vs model — the counters accumulated during the
//       instrumented phase (dslash.site_applies * 1320 flops,
//       comm.halo.bytes) diffed against the alpha-beta/roofline model
//       for the same decomposition. With full-spinor double-precision
//       halos the mapping is exact; the documented tolerance is 1%.
//
// --json <path> records both (bench/BENCH_telemetry.json holds a
// reference run); --report <path> additionally dumps the full telemetry
// run report (schema lqcd.telemetry/1).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/normal.hpp"
#include "solver/cg.hpp"
#include "util/cli.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  using bench::cspan;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 8);
  const int T = cli.get_int("T", 8);
  const int reps = cli.get_int("reps", 12);
  const int applies = cli.get_int("applies", 4);
  const std::string json_path = cli.get_string("json", "");
  const std::string report_path = cli.get_string("report", "");
  cli.finish();

  const LatticeGeometry geo({L, L, L, T});
  const Coord grid_dims{2, 2, 2, 2};
  const double kappa = 0.12;
  const GaugeFieldD u = bench::thermalized(geo, 5.9, 51);

  bench::rule("T5a: telemetry overhead on dslash + CG");
  std::printf("lattice %dx%dx%dx%d, grid 2x2x2x2 (16 ranks), %d reps of "
              "%d applies + 1 CG solve\n",
              L, L, L, T, reps, applies);

  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid(grid_dims));
  NormalOperator<double> a(dist);
  FermionFieldD in(geo), out(geo), b(geo), x(geo);
  bench::fill_gaussian(in.span(), 52);
  bench::fill_gaussian(b.span(), 53);
  const SolverParams sp{.tol = 1e-6,
                        .max_iterations = 40,
                        .check_true_residual = false};

  // One timed sample = the full micro-workload. The CG target is loose so
  // a sample stays short; the work is identical in both phases (same
  // starting guess, same deterministic arithmetic).
  const auto sample = [&] {
    WallTimer t;
    for (int i = 0; i < applies; ++i)
      dist.apply(out.span(), cspan(in.span()));
    blas::zero(x.span());
    cg_solve<double>(a, x.span(), cspan(b.span()), sp);
    return t.seconds();
  };

  telemetry::set_enabled(true);
  sample();  // warm-up (also faults in the counter registrations)
  telemetry::reset();

  // Counter snapshot around the instrumented phase for T5b.
  telemetry::Counter& c_bytes = telemetry::counter("comm.halo.bytes");
  telemetry::Counter& c_sites = telemetry::counter("dslash.site_applies");
  telemetry::Counter& c_exch = telemetry::counter("comm.halo.exchanges");
  const std::int64_t bytes0 = c_bytes.value();
  const std::int64_t sites0 = c_sites.value();
  const std::int64_t exch0 = c_exch.value();

  std::vector<double> on_s(static_cast<std::size_t>(reps)),
      off_s(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    telemetry::set_enabled(true);
    on_s[static_cast<std::size_t>(i)] = sample();
    telemetry::set_enabled(false);
    off_s[static_cast<std::size_t>(i)] = sample();
  }
  telemetry::set_enabled(true);

  const std::int64_t d_bytes = c_bytes.value() - bytes0;
  const std::int64_t d_sites = c_sites.value() - sites0;
  const std::int64_t d_exch = c_exch.value() - exch0;

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  std::vector<double> ratio(static_cast<std::size_t>(reps));
  for (std::size_t i = 0; i < ratio.size(); ++i)
    ratio[i] = on_s[i] / off_s[i];
  const double t_off = median(off_s);
  const double r_med = median(ratio);
  const double overhead_pct = (r_med - 1.0) * 100.0;
  std::printf("workload %8.2f ms disabled, %8.2f ms instrumented "
              "(median of paired ratios)\n",
              t_off * 1e3, t_off * r_med * 1e3);
  std::printf("telemetry overhead: %+.2f%% (contract: <= 2%%)\n",
              overhead_pct);

  bench::rule("T5b: achieved counters vs alpha-beta/roofline model");
  PerfModelOptions opt;
  opt.precision_bytes = 8;       // the virtual cluster ships doubles
  opt.half_spinor_comm = false;  // ...as full 24-real spinors
  Coord local{};
  for (int mu = 0; mu < Nd; ++mu) local[mu] = geo.dim(mu) / grid_dims[mu];
  const DslashCost model = model_dslash(local, grid_dims, blue_gene_q(), opt);
  const double ranks = 16.0;

  const double achieved_bytes_per_exchange =
      d_exch > 0 ? static_cast<double>(d_bytes) / static_cast<double>(d_exch)
                 : 0.0;
  const double model_bytes_per_exchange = model.comm_bytes * ranks;
  const double achieved_flops =
      static_cast<double>(d_sites) * kDslashFlopsPerSite;
  // site_applies counts global sites; the model charges per node, so
  // scale by ranks x (number of full-lattice applications).
  const double n_applies =
      static_cast<double>(d_sites) / static_cast<double>(geo.volume());
  const double model_flops = model.flops * ranks * n_applies;
  std::printf("halo bytes/exchange: achieved %12.0f  model %12.0f  "
              "(ratio %.4f)\n",
              achieved_bytes_per_exchange, model_bytes_per_exchange,
              achieved_bytes_per_exchange / model_bytes_per_exchange);
  std::printf("dslash flops:        achieved %12.3e  model %12.3e  "
              "(ratio %.4f)\n",
              achieved_flops, model_flops, achieved_flops / model_flops);
  std::printf("\nShape: the counters are exact event counts, so with "
              "full-spinor double halos they land on the model's charges "
              "identically; the documented 1%% tolerance covers future "
              "compressed-halo transports.\n");

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.telemetry/1\",\n"
       << "  \"telemetry_schema\": \"" << telemetry::kSchema << "\",\n"
       << "  \"experiment\": \"telemetry-overhead\",\n"
       << "  \"lattice\": [" << L << ", " << L << ", " << L << ", " << T
       << "],\n"
       << "  \"grid\": [2, 2, 2, 2],\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"workload_ms_disabled\": " << t_off * 1e3 << ",\n"
       << "  \"workload_ms_instrumented\": " << t_off * r_med * 1e3
       << ",\n"
       << "  \"overhead_pct\": " << overhead_pct << ",\n"
       << "  \"overhead_contract_pct\": 2.0,\n"
       << "  \"achieved_halo_bytes_per_exchange\": "
       << achieved_bytes_per_exchange << ",\n"
       << "  \"model_halo_bytes_per_exchange\": "
       << model_bytes_per_exchange << ",\n"
       << "  \"achieved_dslash_flops\": " << achieved_flops << ",\n"
       << "  \"model_dslash_flops\": " << model_flops << ",\n"
       << "  \"model_tolerance_pct\": 1.0\n"
       << "}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (!report_path.empty()) {
    telemetry::write_report(report_path);
    std::printf("telemetry report -> %s\n", report_path.c_str());
  }
  return 0;
}
