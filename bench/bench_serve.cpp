// Experiment T7: the propagator campaign service and the multi-RHS block
// solver behind it.
//
//  T7a  block-size sweep — one full 12-column propagator on a thermalized
//       configuration, solved with block_cg at K = 1, 2, 4, 6, 12 and
//       with column-by-column eo_cg as the baseline. The figure of merit
//       is gauge-field traffic: the dslash.gauge_site_loads counter
//       charges one link-bundle load per site per sweep, and the block
//       kernel amortizes that load over the K resident spinors — so
//       loads per propagator should fall ~ 1/K at equal iteration
//       counts. Wall time rides along but is host-dependent; the counter
//       ratio is the reproducible claim.
//  T7b  campaign smoke — a small spec (1 config x 2 kappas x 2 sources)
//       driven through CampaignService end to end, reporting the serve.*
//       telemetry counters (tasks, config loads, retries) from the same
//       lqcd.telemetry/1 stream the service journals into result.json.
//
// --quick shrinks the lattice to 4^4 and loosens the tolerance;
// --json <path> writes the machine-readable artifact
// (bench/BENCH_serve.json holds a reference run).

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gauge/io.hpp"
#include "serve/service.hpp"
#include "spectro/propagator.hpp"
#include "util/cli.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const bool quick = cli.get_flag("quick");
  const int L = cli.get_int("L", quick ? 4 : 8);
  const int T = cli.get_int("T", quick ? 4 : 8);
  const double beta = cli.get_double("beta", 5.9);
  const double kappa = cli.get_double("kappa", quick ? 0.115 : 0.124);
  const double tol = cli.get_double("tol", quick ? 1e-7 : 1e-9);
  const std::string json_path = cli.get_string("json", "");
  cli.finish();

  telemetry::set_enabled(true);
  const LatticeGeometry geo({L, L, L, T});
  const GaugeFieldD u = bench::thermalized(geo, beta, 71);

  bench::rule("T7a: gauge traffic vs block size K (12-column propagator)");
  std::printf("lattice %dx%dx%dx%d, beta=%.2f, kappa=%.4f, tol=%.0e\n", L,
              L, L, T, beta, kappa, tol);

  telemetry::Counter& c_loads = telemetry::counter("dslash.gauge_site_loads");

  struct Point {
    std::string label;
    int block = 1;
    std::int64_t gauge_loads = 0;
    int iterations = 0;
    double seconds = 0.0;
  };
  std::vector<Point> sweep;
  const auto run_point = [&](const char* label, SolverKind method,
                             int block) {
    PropagatorParams params;
    params.kappa = kappa;
    params.solver.tol = tol;
    params.method = method;
    params.block = block;
    Propagator prop(geo);
    const std::int64_t loads0 = c_loads.value();
    WallTimer timer;
    const PropagatorStats stats =
        compute_propagator(prop, u, params, SourceSpec{});
    Point p;
    p.label = label;
    p.block = block;
    p.gauge_loads = c_loads.value() - loads0;
    p.iterations = stats.total_iterations;
    p.seconds = timer.seconds();
    LQCD_REQUIRE(stats.converged, "bench_serve: propagator solve failed");
    sweep.push_back(p);
    std::printf("%-12s K=%2d  gauge loads %12lld  iters %6d  %7.2fs\n",
                label, block, static_cast<long long>(p.gauge_loads),
                p.iterations, p.seconds);
  };

  run_point("eo_cg", SolverKind::EoCg, 1);
  for (const int k : {1, 2, 4, 6, 12})
    run_point("block_cg", SolverKind::BlockCg, k);

  const double base_loads = static_cast<double>(sweep.front().gauge_loads);
  std::printf("\nShape: block_cg at K shares one link load across K "
              "columns, so loads fall ~1/K vs the column-by-column "
              "baseline (K=4: %.2fx, K=12: %.2fx less traffic).\n",
              base_loads / static_cast<double>(sweep[3].gauge_loads),
              base_loads / static_cast<double>(sweep.back().gauge_loads));

  bench::rule("T7b: campaign service end to end (serve.* telemetry)");
  const std::string dir = "bench_serve_campaign";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string cfg_path = dir + "/config_0.lqcd";
  save_gauge(u, cfg_path, beta);

  serve::CampaignSpec spec;
  spec.name = "bench-serve";
  spec.configs = {cfg_path};
  spec.kappas = {kappa - 0.004, kappa};
  spec.sources = {"point:0,0,0,0", "wall:0"};
  spec.tol = tol;
  spec.block = 4;
  spec.ranks = 2;
  spec.output = dir;

  serve::CampaignService service(spec);
  const serve::CampaignOutcome outcome = service.run();
  const auto count = [](const char* name) {
    return telemetry::counter(name).value();
  };
  std::printf("campaign: %d tasks, %d completed, %.2fs "
              "(shard imbalance %.3f)\n",
              outcome.total, outcome.completed, outcome.seconds,
              service.plan().imbalance());
  std::printf("serve.tasks_done=%lld serve.config_loads=%lld "
              "serve.task_retries=%lld\n",
              static_cast<long long>(count("serve.tasks_done")),
              static_cast<long long>(count("serve.config_loads")),
              static_cast<long long>(count("serve.task_retries")));

  if (!json_path.empty()) {
    json::Writer w;
    w.begin_object()
        .field("schema", "lqcd.bench.serve/1")
        .field("experiment", "block-solver-gauge-traffic")
        .field("telemetry_schema", telemetry::kSchema);
    w.key("lattice").begin_array();
    for (const int d : {L, L, L, T}) w.value(d);
    w.end_array();
    w.field("beta", beta).field("kappa", kappa).field("tol", tol);
    w.key("sweep").begin_array();
    for (const Point& p : sweep) {
      w.begin_object()
          .field("solver", p.label)
          .field("block", p.block)
          .field("gauge_site_loads", static_cast<std::int64_t>(p.gauge_loads))
          .field("loads_per_column",
                 static_cast<double>(p.gauge_loads) / 12.0)
          .field("traffic_reduction_vs_column_cg",
                 base_loads / static_cast<double>(p.gauge_loads))
          .field("iterations", p.iterations)
          .field("seconds", p.seconds)
          .end_object();
    }
    w.end_array();
    w.key("campaign")
        .begin_object()
        .field("tasks_total", outcome.total)
        .field("tasks_completed", outcome.completed)
        .field("seconds", outcome.seconds)
        .field("shard_imbalance", service.plan().imbalance())
        .field("serve_tasks_done", count("serve.tasks_done"))
        .field("serve_config_loads", count("serve.config_loads"))
        .field("serve_task_retries", count("serve.task_retries"))
        .field("serve_transient_failures",
               count("serve.transient_failures"))
        .end_object();
    w.end_object();
    bench::write_json(json_path, w);
  }
  return 0;
}
