// Experiment T6: mass-independent solves. MG-preconditioned GCR vs
// mixed-precision eo-CG over a quark-mass sweep on a thermalized quenched
// configuration. Two claims are measured:
//
//  1. Amortized cost: after the one-time adaptive setup, MG solves to the
//     same tolerance with a small, nearly mass-independent number of
//     outer iterations, while CG's iteration count (and with it the
//     fine-grid Dirac work) grows toward kappa_c. The comparison unit is
//     fine-grid Dirac applies per lattice site — Delta(dslash.site_applies
//     + dslash.block_site_applies) / volume — so SAP's block sweeps are
//     priced at the same rate as full-grid applies.
//  2. At-scale shape: model_mg_vcycle prices the V-cycle's coarse level
//     on the machine presets. The coarse grid is tiny, so its halo
//     traffic is latency-dominated — the printed coarse_fraction is the
//     strong-scaling floor the paper's solver section worries about.
//
// --json <path> records the sweep (bench/BENCH_mg.json holds a reference
// run).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "solver/factory.hpp"
#include "util/cli.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

struct SweepRow {
  double kappa = 0.0;
  int mg_iterations = 0;
  double mg_fine_applies = 0.0;  // per site, setup excluded
  double mg_setup_applies = 0.0;  // per site, one-time
  double mg_seconds = 0.0;
  double mg_setup_seconds = 0.0;
  double coarse_iters_per_cycle = 0.0;
  int cg_iterations = 0;
  double cg_fine_applies = 0.0;  // per site
  double cg_seconds = 0.0;
  bool converged = false;
};

/// Fine-grid Dirac applies per site since `mark` (full + block sweeps).
double fine_applies_since(std::int64_t mark, double volume) {
  const std::int64_t now =
      telemetry::counter("dslash.site_applies").value() +
      telemetry::counter("dslash.block_site_applies").value();
  return static_cast<double>(now - mark) / volume;
}

std::int64_t fine_applies_mark() {
  return telemetry::counter("dslash.site_applies").value() +
         telemetry::counter("dslash.block_site_applies").value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 8);
  const double tol = cli.get_double("tol", 1e-8);
  const int nvec = cli.get_int("nvec", 32);
  const int setup_iters = cli.get_int("setup-iters", 4);
  const int cycles = cli.get_int("cycles", 1);
  const int sap_block = cli.get_int("sap-block", 2);
  const int sap_mr = cli.get_int("sap-mr", 4);
  const int coarse_iters = cli.get_int("coarse-iters", 64);
  const double coarse_tol = cli.get_double("coarse-tol", 1e-1);
  const std::string kappa_list =
      cli.get_string("kappas", "0.150,0.160,0.168,0.174");
  const std::string json_path = cli.get_string("json", "");
  cli.finish();

  telemetry::set_enabled(true);
  const LatticeGeometry geo({L, L, L, L});
  const double volume = static_cast<double>(geo.volume());
  const GaugeFieldD u = bench::thermalized(geo, 5.9, 10);
  FermionFieldD b(geo), x(geo);
  bench::fill_gaussian(b.span(), 11);

  std::printf("T6: MG-GCR vs mixed-precision eo-CG, thermalized %d^4 "
              "(beta=5.9, tol=%.0e)\n", L, tol);
  std::printf("Unit: fine-grid Dirac applies per site (full-grid + SAP "
              "block sweeps), setup excluded.\n\n");
  std::printf("%7s | %28s | %21s | %7s\n", "kappa",
              "MG-GCR (setup amortized)", "mixed eo-CG", "applies");
  std::printf("%7s | %6s %8s %12s | %6s %8s %5s | %7s\n", "", "iters",
              "applies", "setup[ms]", "iters", "applies", "t[ms]", "ratio");

  // Comma-separated kappa sweep, reaching toward kappa_c for this
  // (beta=5.9, lightly thermalized) ensemble.
  std::vector<double> kappas;
  {
    std::string list = kappa_list;
    for (std::size_t pos = 0; pos < list.size();) {
      std::size_t next = list.find(',', pos);
      if (next == std::string::npos) next = list.size();
      kappas.push_back(std::stod(list.substr(pos, next - pos)));
      pos = next + 1;
    }
  }
  std::vector<SweepRow> rows;
  for (const double kappa : kappas) {
    SweepRow row;
    row.kappa = kappa;

    SolverConfig cfg;
    cfg.kappa = kappa;
    cfg.base = {.tol = tol, .max_iterations = 20000};
    cfg.mg.block = {2, 2, 2, 2};
    cfg.mg.nvec = nvec;
    cfg.mg.setup_iters = setup_iters;
    cfg.mg.smoother = {{sap_block, sap_block, sap_block, sap_block}, cycles,
                       sap_mr};
    cfg.mg.coarse.tol = coarse_tol;
    cfg.mg.coarse.max_iterations = coarse_iters;

    // MG: the setup (relaxation + Galerkin assembly) is paid once per
    // configuration; meter it separately from the solve.
    std::int64_t mark = fine_applies_mark();
    WallTimer setup_timer;
    const auto mg = make_solver(u, SolverKind::Mg, cfg);
    row.mg_setup_seconds = setup_timer.seconds();
    row.mg_setup_applies = fine_applies_since(mark, volume);

    mark = fine_applies_mark();
    const std::int64_t cyc0 = telemetry::counter("mg.vcycle.count").value();
    const std::int64_t cit0 =
        telemetry::counter("mg.coarse.solve_iterations").value();
    blas::zero(x.span());
    const SolverResult rmg = mg->solve(x.span(), b.span());
    row.mg_fine_applies = fine_applies_since(mark, volume);
    row.mg_iterations = rmg.iterations;
    row.mg_seconds = rmg.seconds;
    const std::int64_t dcyc =
        telemetry::counter("mg.vcycle.count").value() - cyc0;
    row.coarse_iters_per_cycle =
        dcyc > 0 ? static_cast<double>(
                       telemetry::counter("mg.coarse.solve_iterations")
                           .value() -
                       cit0) /
                       static_cast<double>(dcyc)
                 : 0.0;

    // Mixed-precision eo-CG on the same system and rhs.
    const auto cg = make_solver(u, SolverKind::MixedCg, cfg);
    mark = fine_applies_mark();
    blas::zero(x.span());
    const SolverResult rcg = cg->solve(x.span(), b.span());
    row.cg_fine_applies = fine_applies_since(mark, volume);
    row.cg_iterations = rcg.iterations;
    row.cg_seconds = rcg.seconds;
    row.converged = rmg.converged && rcg.converged;

    const double ratio =
        row.mg_fine_applies > 0.0 ? row.cg_fine_applies / row.mg_fine_applies
                                  : 0.0;
    std::printf("%7.3f | %6d %8.0f %12.1f | %6d %8.0f %5.0f | %6.1fx  "
                "(%.0f coarse it/cycle)%s\n",
                kappa, row.mg_iterations, row.mg_fine_applies,
                row.mg_setup_seconds * 1e3, row.cg_iterations,
                row.cg_fine_applies, row.cg_seconds * 1e3, ratio,
                row.coarse_iters_per_cycle,
                row.converged ? "" : "  [!] unconverged");
    rows.push_back(row);
  }

  std::printf("\nShape check: MG outer iterations stay ~flat across the "
              "sweep while CG applies grow\ntoward kappa_c; at the "
              "lightest mass MG must win by >= 3x in fine-grid applies\n"
              "(the acceptance bar; the one-time setup amortizes over the "
              "12 columns of a propagator).\n");

  // At-scale coarse-level pricing: the part a single-node measurement
  // cannot see. 48^3x96 global lattice, strong-scaled.
  bench::rule("modeled V-cycle at scale (48^3 x 96 global, double)");
  MgModelParams mg_model;
  mg_model.nvec = nvec;
  mg_model.smoother_cycles = cycles;
  mg_model.smoother_mr_iters = sap_mr;
  mg_model.coarse_iterations = 16;  // ~the measured mid-sweep cost
  std::printf("%-16s %6s %12s %12s %10s %8s\n", "machine", "nodes",
              "t_vcycle[us]", "t_coarse[us]", "coarse[%]", "msgs");
  for (const char* name : {"bgq", "k", "cluster"}) {
    const MachineModel m = machine_by_name(name);
    for (const int nodes : {512, 4096}) {
      Coord grid{}, local{};
      // Factor nodes = 2^k over the dimensions, largest extent first.
      Coord global{48, 48, 48, 96};
      for (int mu = 0; mu < Nd; ++mu) grid[mu] = 1;
      int rem = nodes;
      while (rem > 1) {
        int best = 0;
        for (int mu = 1; mu < Nd; ++mu)
          if (global[mu] / grid[mu] > global[best] / grid[best]) best = mu;
        grid[best] *= 2;
        rem /= 2;
      }
      bool ok = true;
      for (int mu = 0; mu < Nd; ++mu) {
        if (global[mu] % grid[mu] != 0) ok = false;
        local[mu] = global[mu] / grid[mu];
        if (local[mu] % mg_model.block[mu] != 0) ok = false;
      }
      if (!ok) continue;
      const MgIterationCost c =
          model_mg_vcycle(local, grid, nodes, m, PerfModelOptions{}, mg_model);
      std::printf("%-16s %6d %12.1f %12.1f %10.1f %8d\n", name, nodes,
                  c.t_vcycle * 1e6, c.t_coarse * 1e6,
                  c.coarse_fraction * 100.0, c.coarse_messages);
    }
  }
  std::printf("(coarse[%%] is the coarse level's share of the V-cycle: "
              "dense ncols^2 blocks plus\nlatency-bound tiny halos -- the "
              "strong-scaling floor of the method.)\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"experiment\": \"T6\",\n  \"lattice\": " << L
        << ",\n  \"tol\": " << tol << ",\n  \"sweep\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      out << "    {\"kappa\": " << r.kappa
          << ", \"mg_iterations\": " << r.mg_iterations
          << ", \"mg_fine_applies\": " << r.mg_fine_applies
          << ", \"mg_setup_applies\": " << r.mg_setup_applies
          << ", \"mg_setup_seconds\": " << r.mg_setup_seconds
          << ", \"mg_seconds\": " << r.mg_seconds
          << ", \"cg_iterations\": " << r.cg_iterations
          << ", \"cg_fine_applies\": " << r.cg_fine_applies
          << ", \"cg_seconds\": " << r.cg_seconds
          << ", \"converged\": " << (r.converged ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
