// Experiment F4: domain decomposition. Measured: SAP-preconditioned GCR
// vs plain GCR iteration counts (block-size sweep). Modeled: where
// SAP-GCR's comm-light iterations beat CG at scale (the crossover).
//
// --json <path> records measured iteration counts and the modeled
// crossover; --quick shrinks the lattice/block sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/wilson.hpp"
#include "solver/gcr.hpp"
#include "solver/sap.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  using namespace lqcd::bench;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 30, quick ? 6 : 8);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 31);
  const double kappa = 0.122;
  WilsonOperator<double> m(u, kappa);

  std::printf("F4a (measured): GCR(16) on %dx%dx%dx%d, kappa=%.3f, "
              "tol=1e-8 — SAP block sweep\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3), kappa);
  std::printf("%16s %8s %10s %12s\n", "preconditioner", "iters",
              "time[ms]", "M-applies");

  GcrParams gp;
  gp.base.tol = 1e-8;
  gp.base.max_iterations = 4000;
  int plain_iters = 0;
  {
    FermionFieldD x(geo);
    const SolverResult r = gcr_solve<double>(m, x.span(), b.span(), gp);
    plain_iters = r.iterations;
    std::printf("%16s %8d %10.2f %12d%s\n", "none", r.iterations,
                r.seconds * 1e3, r.iterations,
                r.converged ? "" : "  [!]");
  }
  const std::vector<int> blocks =
      quick ? std::vector<int>{2} : std::vector<int>{2, 4};
  std::string json_rows;
  for (const int blk : blocks) {
    SapParams sp;
    sp.block = {blk, blk, blk, blk};
    sp.cycles = 2;
    sp.block_mr_iterations = 4;
    SapPreconditioner<double> sap(m, sp);
    FermionFieldD x(geo);
    const SolverResult r =
        gcr_solve<double>(m, x.span(), b.span(), gp, &sap);
    char name[32];
    std::snprintf(name, sizeof(name), "SAP %d^4 blocks", blk);
    // Each preconditioned iteration does 2*cycles global M applies plus
    // local block work.
    std::printf("%16s %8d %10.2f %12d%s\n", name, r.iterations,
                r.seconds * 1e3, r.iterations * (1 + 2 * sp.cycles),
                r.converged ? "" : "  [!]");
    char row[160];
    std::snprintf(row, sizeof(row),
                  "    {\"block\": %d, \"iters\": %d, \"converged\": %s}",
                  blk, r.iterations, r.converged ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += row;
  }

  // Fold the measured iteration advantage (CG-class iterations vs SAP
  // outer iterations, ~8x above at kappa near critical) into the modeled
  // per-iteration costs to estimate time-to-solution at scale.
  const double iter_ratio = 6.0;
  const Coord global{48, 48, 48, 96};
  PerfModelOptions opt;
  std::printf("\nF4b (modeled): 48^3x96; SAP(2 cycles, 4 MR) "
              "time-to-solution assumes %.0fx fewer outer iterations "
              "(measured above)\n",
              iter_ratio);
  for (const auto& machine : {blue_gene_q(), generic_cluster()}) {
    std::printf("\n  %s\n", machine.name.c_str());
    std::printf("%8s %14s %14s | %10s %10s | %16s\n", "nodes",
                "CG t_it[us]", "SAP t_it[us]", "CG comm%", "SAP comm%",
                "solve SAP/CG");
    for (const int nodes : {64, 512, 4096, 8192}) {
      if (!can_decompose(global, nodes)) continue;
      const Coord grid = choose_grid(global, nodes);
      const ProcessGrid pg(grid);
      const Coord local = pg.local_dims(global);
      const IterationCost cg =
          model_cg_iteration(local, grid, nodes, machine, opt);
      const IterationCost sap = model_sap_gcr_iteration(
          local, grid, nodes, machine, opt, 2, 4);
      const double solve_ratio = (sap.t_iter / iter_ratio) / cg.t_iter;
      std::printf("%8d %14.2f %14.2f | %9.1f%% %9.1f%% | %15.2fx\n",
                  nodes, cg.t_iter * 1e6, sap.t_iter * 1e6,
                  100.0 * cg.comm_fraction, 100.0 * sap.comm_fraction,
                  solve_ratio);
    }
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.sap/1\",\n"
       << "  \"experiment\": \"sap-block-sweep\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"kappa\": " << kappa << ",\n"
       << "  \"plain_gcr_iters\": " << plain_iters << ",\n"
       << "  \"sap\": [\n" << json_rows << "\n  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: SAP cuts the measured iteration count several-"
              "fold near kappa_c; per iteration it spends more local "
              "flops but a far smaller comm fraction, so its advantage "
              "grows with node count — the DD-vs-Krylov crossover.\n");
  return 0;
}
