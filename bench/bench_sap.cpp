// Experiment F4: domain decomposition. Measured: SAP-preconditioned GCR
// vs plain GCR iteration counts (block-size sweep). Modeled: where
// SAP-GCR's comm-light iterations beat CG at scale (the crossover).

#include <cstdio>

#include "bench_common.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/wilson.hpp"
#include "solver/gcr.hpp"
#include "solver/sap.hpp"

int main() {
  using namespace lqcd;
  using namespace lqcd::bench;

  const LatticeGeometry geo({8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 30);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 31);
  const double kappa = 0.122;
  WilsonOperator<double> m(u, kappa);

  std::printf("F4a (measured): GCR(16) on 8^4, kappa=%.3f, tol=1e-8 — "
              "SAP block sweep\n",
              kappa);
  std::printf("%16s %8s %10s %12s\n", "preconditioner", "iters",
              "time[ms]", "M-applies");

  GcrParams gp;
  gp.base.tol = 1e-8;
  gp.base.max_iterations = 4000;
  {
    FermionFieldD x(geo);
    const SolverResult r = gcr_solve<double>(m, x.span(), b.span(), gp);
    std::printf("%16s %8d %10.2f %12d%s\n", "none", r.iterations,
                r.seconds * 1e3, r.iterations,
                r.converged ? "" : "  [!]");
  }
  for (const int blk : {2, 4}) {
    SapParams sp;
    sp.block = {blk, blk, blk, blk};
    sp.cycles = 2;
    sp.block_mr_iterations = 4;
    SapPreconditioner<double> sap(m, sp);
    FermionFieldD x(geo);
    const SolverResult r =
        gcr_solve<double>(m, x.span(), b.span(), gp, &sap);
    char name[32];
    std::snprintf(name, sizeof(name), "SAP %d^4 blocks", blk);
    // Each preconditioned iteration does 2*cycles global M applies plus
    // local block work.
    std::printf("%16s %8d %10.2f %12d%s\n", name, r.iterations,
                r.seconds * 1e3, r.iterations * (1 + 2 * sp.cycles),
                r.converged ? "" : "  [!]");
  }

  // Fold the measured iteration advantage (CG-class iterations vs SAP
  // outer iterations, ~8x above at kappa near critical) into the modeled
  // per-iteration costs to estimate time-to-solution at scale.
  const double iter_ratio = 6.0;
  const Coord global{48, 48, 48, 96};
  PerfModelOptions opt;
  std::printf("\nF4b (modeled): 48^3x96; SAP(2 cycles, 4 MR) "
              "time-to-solution assumes %.0fx fewer outer iterations "
              "(measured above)\n",
              iter_ratio);
  for (const auto& machine : {blue_gene_q(), generic_cluster()}) {
    std::printf("\n  %s\n", machine.name.c_str());
    std::printf("%8s %14s %14s | %10s %10s | %16s\n", "nodes",
                "CG t_it[us]", "SAP t_it[us]", "CG comm%", "SAP comm%",
                "solve SAP/CG");
    for (const int nodes : {64, 512, 4096, 8192}) {
      if (!can_decompose(global, nodes)) continue;
      const Coord grid = choose_grid(global, nodes);
      const ProcessGrid pg(grid);
      const Coord local = pg.local_dims(global);
      const IterationCost cg =
          model_cg_iteration(local, grid, nodes, machine, opt);
      const IterationCost sap = model_sap_gcr_iteration(
          local, grid, nodes, machine, opt, 2, 4);
      const double solve_ratio = (sap.t_iter / iter_ratio) / cg.t_iter;
      std::printf("%8d %14.2f %14.2f | %9.1f%% %9.1f%% | %15.2fx\n",
                  nodes, cg.t_iter * 1e6, sap.t_iter * 1e6,
                  100.0 * cg.comm_fraction, 100.0 * sap.comm_fraction,
                  solve_ratio);
    }
  }
  std::printf("\nShape: SAP cuts the measured iteration count several-"
              "fold near kappa_c; per iteration it spends more local "
              "flops but a far smaller comm fraction, so its advantage "
              "grows with node count — the DD-vs-Krylov crossover.\n");
  return 0;
}
