// Experiment F2: weak scaling (sustained PFLOP/s at fixed local volume)
// out to ~10^5 nodes on the machine presets — the "machine fills up"
// figure. Modeled; see DESIGN.md for the substitution rationale.
//
// --json <path> records the BG/Q 16^4-per-node curve; --quick trims the
// node sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  PerfModelOptions opt;
  opt.precision_bytes = 8;

  const std::vector<int> nodes =
      quick ? std::vector<int>{16, 256, 4096}
            : std::vector<int>{16,    64,    256,   1024, 4096,
                               16384, 49152, 98304};

  std::printf("F2: weak scaling, even-odd CG iteration (modeled)\n");
  for (const auto& machine : {blue_gene_q(), k_computer(),
                              generic_cluster()}) {
    for (const Coord local : {Coord{8, 8, 8, 8}, Coord{16, 16, 16, 16}}) {
      std::printf("\n=== %dx%dx%dx%d per node on %s ===\n", local[0],
                  local[1], local[2], local[3], machine.name.c_str());
      std::printf("%8s %12s %12s %9s %8s\n", "nodes", "t_iter[us]",
                  "TFLOP/s", "eff", "comm%");
      for (const auto& p : weak_scaling(local, machine, opt, nodes))
        std::printf("%8d %12.2f %12.1f %8.1f%% %7.1f%%\n", p.nodes,
                    p.cost.t_iter * 1e6, p.sustained_tflops,
                    100.0 * p.efficiency, 100.0 * p.cost.comm_fraction);
    }
  }

  if (!json_path.empty()) {
    const auto pts =
        weak_scaling({16, 16, 16, 16}, blue_gene_q(), opt, nodes);
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.weak_scaling/1\",\n"
       << "  \"experiment\": \"weak-scaling\",\n"
       << "  \"machine\": \"" << blue_gene_q().name << "\",\n"
       << "  \"local\": [16, 16, 16, 16],\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < pts.size(); ++i)
      js << "    {\"nodes\": " << pts[i].nodes << ", \"tflops\": "
         << pts[i].sustained_tflops << ", \"efficiency\": "
         << pts[i].efficiency << "}"
         << (i + 1 < pts.size() ? "," : "") << "\n";
    js << "  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: near-flat efficiency (nearest-neighbor halos are "
              "node-count independent); the slow decay is the log(N) "
              "allreduce. Larger local volumes sit closer to 100%%. The "
              "single-rail cluster preset pays visibly more than the "
              "torus machines at small local volume.\n");
  return 0;
}
