// Experiment F2: weak scaling (sustained PFLOP/s at fixed local volume)
// out to ~10^5 nodes on the machine presets — the "machine fills up"
// figure. Modeled; see DESIGN.md for the substitution rationale.

#include <cstdio>
#include <vector>

#include "comm/machine.hpp"
#include "comm/perf_model.hpp"

int main() {
  using namespace lqcd;
  PerfModelOptions opt;
  opt.precision_bytes = 8;

  const std::vector<int> nodes = {16,    64,    256,   1024, 4096,
                                  16384, 49152, 98304};

  std::printf("F2: weak scaling, even-odd CG iteration (modeled)\n");
  for (const auto& machine : {blue_gene_q(), k_computer(),
                              generic_cluster()}) {
    for (const Coord local : {Coord{8, 8, 8, 8}, Coord{16, 16, 16, 16}}) {
      std::printf("\n=== %dx%dx%dx%d per node on %s ===\n", local[0],
                  local[1], local[2], local[3], machine.name.c_str());
      std::printf("%8s %12s %12s %9s %8s\n", "nodes", "t_iter[us]",
                  "TFLOP/s", "eff", "comm%");
      for (const auto& p : weak_scaling(local, machine, opt, nodes))
        std::printf("%8d %12.2f %12.1f %8.1f%% %7.1f%%\n", p.nodes,
                    p.cost.t_iter * 1e6, p.sustained_tflops,
                    100.0 * p.efficiency, 100.0 * p.cost.comm_fraction);
    }
  }
  std::printf("\nShape: near-flat efficiency (nearest-neighbor halos are "
              "node-count independent); the slow decay is the log(N) "
              "allreduce. Larger local volumes sit closer to 100%%. The "
              "single-rail cluster preset pays visibly more than the "
              "torus machines at small local volume.\n");
  return 0;
}
