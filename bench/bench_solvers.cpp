// Experiment T2: solver iterations and wall time vs quark mass (critical
// slowing down) for CG on the normal even-odd system, BiCGStab on M, and
// GCR — the standard solver-comparison table, measured on a thermalized
// quenched configuration.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/gcr.hpp"

int main() {
  using namespace lqcd;
  using namespace lqcd::bench;

  const LatticeGeometry geo({8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 10);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 11);
  const auto hv = static_cast<std::size_t>(geo.half_volume());

  std::printf("T2: solver comparison on a thermalized 8^4 quenched "
              "configuration (beta=5.9, tol=1e-8)\n");
  std::printf("%8s | %22s | %22s | %22s\n", "kappa", "eo-CG (normal eq)",
              "BiCGStab (full M)", "GCR(16) (full M)");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "", "iters",
              "time[ms]", "iters", "time[ms]", "iters", "time[ms]");

  SolverParams p{.tol = 1e-8, .max_iterations = 20000};
  for (const double kappa : {0.100, 0.110, 0.118, 0.124}) {
    // Even-odd CG.
    SchurWilsonOperator<double> shat(u, kappa);
    NormalOperator<double> nhat(shat);
    aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
    shat.prepare_rhs({bhat.data(), hv}, b.span());
    apply_dagger_g5<double>(shat, {bhat2.data(), hv},
                            {bhat.data(), hv}, {tmp.data(), hv});
    const SolverResult r_cg = cg_solve<double>(
        nhat, {xo.data(), hv},
        std::span<const WilsonSpinorD>(bhat2.data(), hv), p);

    // BiCGStab on the full operator.
    WilsonOperator<double> m(u, kappa);
    FermionFieldD x1(geo), x2(geo);
    const SolverResult r_bi = bicgstab_solve<double>(m, x1.span(),
                                                     b.span(), p);

    // GCR on the full operator.
    GcrParams gp;
    gp.base = p;
    gp.restart_length = 16;
    const SolverResult r_gcr = gcr_solve<double>(m, x2.span(), b.span(),
                                                 gp);

    std::printf("%8.3f | %10d %11.2f | %10d %11.2f | %10d %11.2f%s\n",
                kappa, r_cg.iterations, r_cg.seconds * 1e3,
                r_bi.iterations, r_bi.seconds * 1e3, r_gcr.iterations,
                r_gcr.seconds * 1e3,
                (r_cg.converged && r_bi.converged && r_gcr.converged)
                    ? ""
                    : "  [!] unconverged");
  }
  std::printf("\nShape check: every column's iteration count must grow "
              "toward kappa_c (critical slowing down);\n"
              "eo-CG does half-volume work per iteration, BiCGStab ~2 "
              "full applies, GCR pays orthogonalization.\n");
  return 0;
}
