// Experiment T2: solver iterations and wall time vs quark mass (critical
// slowing down) for the factory-configured solver stack — eo-CG on the
// normal Schur system, BiCGStab on M, and GCR — measured on a thermalized
// quenched configuration. All pipelines come from solver/factory.hpp, the
// same code path the examples use.
//
// --json <path> records the per-kappa iteration counts; --quick shrinks
// the lattice and kappa sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "solver/factory.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  using namespace lqcd::bench;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 10, quick ? 4 : 8);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 11);

  std::printf("T2: solver comparison on a thermalized %dx%dx%dx%d "
              "quenched configuration (beta=5.9, tol=1e-8)\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3));
  std::printf("%8s | %22s | %22s | %22s\n", "kappa", "eo-CG (normal eq)",
              "BiCGStab (full M)", "GCR(16) (full M)");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "", "iters",
              "time[ms]", "iters", "time[ms]", "iters", "time[ms]");

  const SolverKind kinds[] = {SolverKind::EoCg, SolverKind::BiCgStab,
                              SolverKind::Gcr};
  const std::vector<double> kappas =
      quick ? std::vector<double>{0.118}
            : std::vector<double>{0.100, 0.110, 0.118, 0.124};
  std::string json_rows;
  for (const double kappa : kappas) {
    SolverConfig cfg;
    cfg.kappa = kappa;
    cfg.base = {.tol = 1e-8, .max_iterations = 20000};
    SolverResult results[3];
    FermionFieldD x(geo);
    for (int i = 0; i < 3; ++i) {
      const auto solver = make_solver(u, kinds[i], cfg);
      blas::zero(x.span());
      results[i] = solver->solve(x.span(), b.span());
    }
    const bool ok = results[0].converged && results[1].converged &&
                    results[2].converged;
    std::printf("%8.3f | %10d %11.2f | %10d %11.2f | %10d %11.2f%s\n",
                kappa, results[0].iterations, results[0].seconds * 1e3,
                results[1].iterations, results[1].seconds * 1e3,
                results[2].iterations, results[2].seconds * 1e3,
                ok ? "" : "  [!] unconverged");
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"kappa\": %.3f, \"eo_cg_iters\": %d, "
                  "\"bicgstab_iters\": %d, \"gcr_iters\": %d, "
                  "\"converged\": %s}",
                  kappa, results[0].iterations, results[1].iterations,
                  results[2].iterations, ok ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += row;
  }
  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.solvers/1\",\n"
       << "  \"experiment\": \"critical-slowing-down\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"tol\": 1e-8,\n"
       << "  \"kappas\": [\n" << json_rows << "\n  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  std::printf("\nShape check: every column's iteration count must grow "
              "toward kappa_c (critical slowing down);\n"
              "eo-CG does half-volume work per iteration, BiCGStab ~2 "
              "full applies, GCR pays orthogonalization.\n"
              "The mass-independent counterpoint is bench_mg (MG-GCR vs "
              "mixed CG).\n");
  return 0;
}
