// Experiment T2: solver iterations and wall time vs quark mass (critical
// slowing down) for the factory-configured solver stack — eo-CG on the
// normal Schur system, BiCGStab on M, and GCR — measured on a thermalized
// quenched configuration. All pipelines come from solver/factory.hpp, the
// same code path the examples use.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "solver/factory.hpp"

int main() {
  using namespace lqcd;
  using namespace lqcd::bench;

  const LatticeGeometry geo({8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 10);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 11);

  std::printf("T2: solver comparison on a thermalized 8^4 quenched "
              "configuration (beta=5.9, tol=1e-8)\n");
  std::printf("%8s | %22s | %22s | %22s\n", "kappa", "eo-CG (normal eq)",
              "BiCGStab (full M)", "GCR(16) (full M)");
  std::printf("%8s | %10s %11s | %10s %11s | %10s %11s\n", "", "iters",
              "time[ms]", "iters", "time[ms]", "iters", "time[ms]");

  const SolverKind kinds[] = {SolverKind::EoCg, SolverKind::BiCgStab,
                              SolverKind::Gcr};
  for (const double kappa : {0.100, 0.110, 0.118, 0.124}) {
    SolverConfig cfg;
    cfg.kappa = kappa;
    cfg.base = {.tol = 1e-8, .max_iterations = 20000};
    SolverResult results[3];
    FermionFieldD x(geo);
    for (int i = 0; i < 3; ++i) {
      const auto solver = make_solver(u, kinds[i], cfg);
      blas::zero(x.span());
      results[i] = solver->solve(x.span(), b.span());
    }
    const bool ok = results[0].converged && results[1].converged &&
                    results[2].converged;
    std::printf("%8.3f | %10d %11.2f | %10d %11.2f | %10d %11.2f%s\n",
                kappa, results[0].iterations, results[0].seconds * 1e3,
                results[1].iterations, results[1].seconds * 1e3,
                results[2].iterations, results[2].seconds * 1e3,
                ok ? "" : "  [!] unconverged");
  }
  std::printf("\nShape check: every column's iteration count must grow "
              "toward kappa_c (critical slowing down);\n"
              "eo-CG does half-volume work per iteration, BiCGStab ~2 "
              "full applies, GCR pays orthogonalization.\n"
              "The mass-independent counterpoint is bench_mg (MG-GCR vs "
              "mixed CG).\n");
  return 0;
}
