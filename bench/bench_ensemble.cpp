// Experiment T4: gauge ensemble generation throughput and correctness
// diagnostics — heatbath/over-relaxation sweep times and plaquettes over
// a beta sweep, plus HMC dH / acceptance at two step sizes.
//
// --json <path> records the plaquette/acceptance summary; --quick trims
// the sweeps/trajectories for CI smoke runs.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gauge/flow.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/hmc.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 4}
                                  : Coord{8, 8, 8, 8});
  const int sweeps = quick ? 4 : 10;

  std::printf("T4a: heatbath + 2x over-relaxation on %dx%dx%dx%d, %d "
              "measured sweeps after %d thermalization sweeps\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3), sweeps,
              sweeps);
  std::printf("%6s %12s %12s %14s %14s\n", "beta", "<P>", "err",
              "sweep[ms]", "strong/weak ref");
  const std::vector<double> betas =
      quick ? std::vector<double>{0.5, 5.7}
            : std::vector<double>{0.5, 5.7, 6.0, 6.2};
  std::string hb_rows;
  for (const double beta : betas) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(40));
    Heatbath hb(u, {.beta = beta, .or_per_hb = 2, .seed = 41});
    for (int i = 0; i < sweeps; ++i) hb.sweep();
    std::vector<double> plaq;
    WallTimer t;
    for (int i = 0; i < sweeps; ++i) plaq.push_back(hb.sweep());
    const double ms = t.seconds() * 1e3 / sweeps;
    const double ref = beta < 2.0 ? plaquette_strong_coupling(beta)
                                  : plaquette_weak_coupling(beta);
    std::printf("%6.2f %12.5f %12.5f %14.1f %14.4f\n", beta, mean(plaq),
                standard_error(plaq), ms, ref);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "    {\"beta\": %.2f, \"plaquette\": %.5f, "
                  "\"sweep_ms\": %.3f}",
                  beta, mean(plaq), ms);
    if (!hb_rows.empty()) hb_rows += ",\n";
    hb_rows += row;
  }

  std::printf("\nT4b: pure-gauge HMC on %dx%dx%dx%d at beta=5.7 "
              "(Omelyan, trajectory length 1)\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3));
  std::printf("%8s %12s %12s %12s %14s\n", "steps", "<|dH|>", "accept",
              "<P>", "traj[ms]");
  const std::vector<int> step_counts =
      quick ? std::vector<int>{8} : std::vector<int>{8, 16};
  std::string hmc_rows;
  for (const int steps : step_counts) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(42));
    {
      Heatbath pre(u, {.beta = 5.7, .or_per_hb = 1, .seed = 43});
      for (int i = 0; i < (quick ? 4 : 8); ++i) pre.sweep();
    }
    Hmc hmc(u, {.beta = 5.7,
                .trajectory_length = 1.0,
                .steps = steps,
                .integrator = Integrator::Omelyan,
                .seed = 44});
    std::vector<double> adh, plaq;
    WallTimer t;
    const int n = quick ? 3 : 8;
    for (int i = 0; i < n; ++i) {
      const TrajectoryResult r = hmc.trajectory();
      adh.push_back(std::abs(r.delta_h));
      plaq.push_back(r.plaquette);
    }
    std::printf("%8d %12.4f %11.0f%% %12.5f %14.1f\n", steps, mean(adh),
                100.0 * hmc.acceptance_rate(), mean(plaq),
                t.seconds() * 1e3 / n);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "    {\"steps\": %d, \"mean_abs_dh\": %.4f, "
                  "\"acceptance\": %.3f}",
                  steps, mean(adh), hmc.acceptance_rate());
    if (!hmc_rows.empty()) hmc_rows += ",\n";
    hmc_rows += row;
  }
  std::printf("\nT4c: Wilson flow scale setting on the beta=6.0 stream "
              "(t^2<E> vs flow time)\n");
  {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(45));
    Heatbath hb(u, {.beta = 6.0, .or_per_hb = 2, .seed = 46});
    for (int i = 0; i < (quick ? 6 : 15); ++i) hb.sweep();
    const auto hist = wilson_flow(u, {.step = 0.02,
                                      .steps = quick ? 4 : 10});
    std::printf("%8s %12s %12s %12s\n", "t", "<E>", "t^2<E>", "plaq");
    for (const auto& o : hist)
      std::printf("%8.3f %12.4f %12.5f %12.5f\n", o.t, o.energy, o.t2e,
                  o.plaquette);
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.ensemble/1\",\n"
       << "  \"experiment\": \"ensemble-generation\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"heatbath\": [\n" << hb_rows << "\n  ],\n"
       << "  \"hmc\": [\n" << hmc_rows << "\n  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: plaquette tracks beta/18 at strong coupling and "
              "1 - 2/beta at weak coupling; HMC |dH| drops ~4x when the "
              "step count doubles (2nd-order integrator) and its "
              "plaquette agrees with the heatbath stream.\n");
  return 0;
}
