// Experiment T4: gauge ensemble generation throughput and correctness
// diagnostics — heatbath/over-relaxation sweep times and plaquettes over
// a beta sweep, plus HMC dH / acceptance at two step sizes.

#include <cmath>
#include <cstdio>

#include "gauge/flow.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/hmc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace lqcd;
  const LatticeGeometry geo({8, 8, 8, 8});

  std::printf("T4a: heatbath + 2x over-relaxation on 8^4, 10 measured "
              "sweeps after 10 thermalization sweeps\n");
  std::printf("%6s %12s %12s %14s %14s\n", "beta", "<P>", "err",
              "sweep[ms]", "strong/weak ref");
  for (const double beta : {0.5, 5.7, 6.0, 6.2}) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(40));
    Heatbath hb(u, {.beta = beta, .or_per_hb = 2, .seed = 41});
    for (int i = 0; i < 10; ++i) hb.sweep();
    std::vector<double> plaq;
    WallTimer t;
    for (int i = 0; i < 10; ++i) plaq.push_back(hb.sweep());
    const double ms = t.seconds() * 1e3 / 10;
    const double ref = beta < 2.0 ? plaquette_strong_coupling(beta)
                                  : plaquette_weak_coupling(beta);
    std::printf("%6.2f %12.5f %12.5f %14.1f %14.4f\n", beta, mean(plaq),
                standard_error(plaq), ms, ref);
  }

  std::printf("\nT4b: pure-gauge HMC on 8^4 at beta=5.7 (Omelyan, "
              "trajectory length 1)\n");
  std::printf("%8s %12s %12s %12s %14s\n", "steps", "<|dH|>", "accept",
              "<P>", "traj[ms]");
  for (const int steps : {8, 16}) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(42));
    {
      Heatbath pre(u, {.beta = 5.7, .or_per_hb = 1, .seed = 43});
      for (int i = 0; i < 8; ++i) pre.sweep();
    }
    Hmc hmc(u, {.beta = 5.7,
                .trajectory_length = 1.0,
                .steps = steps,
                .integrator = Integrator::Omelyan,
                .seed = 44});
    std::vector<double> adh, plaq;
    WallTimer t;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      const TrajectoryResult r = hmc.trajectory();
      adh.push_back(std::abs(r.delta_h));
      plaq.push_back(r.plaquette);
    }
    std::printf("%8d %12.4f %11.0f%% %12.5f %14.1f\n", steps, mean(adh),
                100.0 * hmc.acceptance_rate(), mean(plaq),
                t.seconds() * 1e3 / n);
  }
  std::printf("\nT4c: Wilson flow scale setting on the beta=6.0 stream "
              "(t^2<E> vs flow time)\n");
  {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(45));
    Heatbath hb(u, {.beta = 6.0, .or_per_hb = 2, .seed = 46});
    for (int i = 0; i < 15; ++i) hb.sweep();
    const auto hist = wilson_flow(u, {.step = 0.02, .steps = 10});
    std::printf("%8s %12s %12s %12s\n", "t", "<E>", "t^2<E>", "plaq");
    for (const auto& o : hist)
      std::printf("%8.3f %12.4f %12.5f %12.5f\n", o.t, o.energy, o.t2e,
                  o.plaquette);
  }

  std::printf("\nShape: plaquette tracks beta/18 at strong coupling and "
              "1 - 2/beta at weak coupling; HMC |dH| drops ~4x when the "
              "step count doubles (2nd-order integrator) and its "
              "plaquette agrees with the heatbath stream.\n");
  return 0;
}
