// Experiment R: what fault tolerance costs. Three measured layers:
//
//  R1  hardened halo transport — distributed Wilson applies with the raw
//      memcpy transport, with CRC-32 framing, and with CRC framing under
//      an injected fault load (corruption + drops, detected and
//      retransmitted). The bit-identity of every hardened apply against
//      the single-domain operator is asserted inline: resilience that
//      changes the answer is worthless.
//  R2  HMC checkpoint/restart — atomic save + verified load cost, and the
//      amortized overhead of checkpointing every k-th trajectory.
//  R3  the alpha-beta model's resilience surcharge on the machine
//      presets, for the checksum + expected-retransmit settings measured
//      in R1 (petascale projection of the same policy).
//
// --json <path> records the R1/R2 numbers (bench/BENCH_resilience.json in
// the repo holds a reference run).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/wilson.hpp"
#include "hmc/checkpoint.hpp"
#include "hmc/hmc.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace {

using namespace lqcd;

double max_site_diff2(std::span<const WilsonSpinorD> a,
                      std::span<const WilsonSpinorD> b) {
  double diff = 0.0;
  for (std::size_t s = 0; s < a.size(); ++s) diff += norm2(a[s] - b[s]);
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  using bench::cspan;
  Cli cli(argc, argv);
  const int L = cli.get_int("L", 16);
  const int T = cli.get_int("T", 32);
  const int reps = cli.get_int("reps", 32);
  const std::string json_path = cli.get_string("json", "");
  cli.finish();

  const LatticeGeometry geo({L, L, L, T});
  const Coord grid_dims{2, 2, 2, 2};
  const double kappa = 0.12;
  const GaugeFieldD u = bench::thermalized(geo, 5.9, 41);

  bench::rule("R1: hardened halo transport (distributed Wilson apply)");
  std::printf("lattice %dx%dx%dx%d, grid 2x2x2x2 (16 ranks), %d reps\n", L,
              L, L, T, reps);

  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid(grid_dims));
  FermionFieldD in(geo), ref(geo), out(geo);
  bench::fill_gaussian(in.span(), 42);
  single.apply(ref.span(), cspan(in.span()));

  // Three transports: raw memcpy baseline, CRC-32-framed, and CRC-framed
  // under 1% corruption + 0.5% drops per message. Interleaved inside each
  // rep so scheduler noise hits all three alike; per-transport minimum is
  // the reported number. Every hardened apply is asserted bit-identical.
  FaultInjector fi(4711, {.corrupt_prob = 0.01, .drop_prob = 0.005});
  const ResilienceConfig hardened{.checksum = true, .max_retries = 8};
  const auto use_raw = [&] {
    dist.cluster().set_fault_injector(nullptr);
    dist.cluster().set_resilience({});
  };
  const auto check = [&](const char* what) {
    LQCD_ASSERT(max_site_diff2(cspan(ref.span()), cspan(out.span())) == 0.0,
                what);
  };
  // Each timed sample is two back-to-back applies: host noise bursts are
  // about one apply long, so the 2-apply average smooths them.
  constexpr int kAppliesPerSample = 2;
  const auto sample = [&] {
    WallTimer t;
    for (int a = 0; a < kAppliesPerSample; ++a)
      dist.apply(out.span(), cspan(in.span()));
    return t.seconds() / kAppliesPerSample;
  };
  std::vector<double> base_s(reps), crc_s(reps), fault_s(reps);
  long long crc_bytes = 0;
  CommStats fault_stats;
  use_raw();
  dist.apply(out.span(), cspan(in.span()));  // warm-up
  for (int i = 0; i < reps; ++i) {
    use_raw();
    base_s[static_cast<std::size_t>(i)] = sample();
    check("baseline distributed apply not bit-identical");

    dist.cluster().set_resilience(hardened);
    CommStats s0 = dist.cluster().stats();
    crc_s[static_cast<std::size_t>(i)] = sample();
    check("checksummed apply not bit-identical");
    crc_bytes += dist.cluster().stats().checksum_bytes - s0.checksum_bytes;

    dist.cluster().set_fault_injector(&fi);
    s0 = dist.cluster().stats();
    fault_s[static_cast<std::size_t>(i)] = sample();
    check("faulted apply not bit-identical after retransmits");
    const CommStats s1 = dist.cluster().stats();
    fault_stats.crc_failures += s1.crc_failures - s0.crc_failures;
    fault_stats.timeouts += s1.timeouts - s0.timeouts;
    fault_stats.retransmits += s1.retransmits - s0.retransmits;
    fault_stats.modeled_delay_us +=
        s1.modeled_delay_us - s0.modeled_delay_us;
  }
  use_raw();
  // Paired per-rep ratios, then the median: the three transports inside
  // one rep are adjacent in time, so slow-regime drift of the host
  // cancels in the ratio and the median rejects outlier reps.
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
  };
  std::vector<double> r_crc(reps), r_fault(reps);
  for (int i = 0; i < reps; ++i) {
    const auto k = static_cast<std::size_t>(i);
    r_crc[k] = crc_s[k] / base_s[k];
    r_fault[k] = fault_s[k] / base_s[k];
  }
  const double t_base = median(base_s);
  const double t_crc = t_base * median(r_crc);
  const double t_fault = t_base * median(r_fault);

  const double ovh_crc = 100.0 * (t_crc / t_base - 1.0);
  const double ovh_fault = 100.0 * (t_fault / t_base - 1.0);
  std::printf("%26s %12s %10s\n", "transport", "apply[ms]", "ovh[%]");
  std::printf("%26s %12.3f %10s\n", "raw memcpy", t_base * 1e3, "-");
  std::printf("%26s %12.3f %10.1f\n", "crc32-framed", t_crc * 1e3, ovh_crc);
  std::printf("%26s %12.3f %10.1f\n", "crc32 + injected faults",
              t_fault * 1e3, ovh_fault);
  std::printf("faulted run: %lld corruptions + %lld drops detected, %lld "
              "retransmits, all applies bit-identical\n",
              static_cast<long long>(fault_stats.crc_failures),
              static_cast<long long>(fault_stats.timeouts),
              static_cast<long long>(fault_stats.retransmits));
  std::printf("checksummed bytes/apply: %.2f MB (modeled backoff %.1f us "
              "total)\n",
              static_cast<double>(crc_bytes) / (reps * kAppliesPerSample) /
                  1e6,
              fault_stats.modeled_delay_us);

  bench::rule("R2: HMC checkpoint/restart");
  // Fixed production-drill geometry, independent of --L/--T: R2 measures
  // I/O + amortization policy, not lattice-volume scaling.
  const LatticeGeometry geo_ckpt({8, 8, 8, 16});
  const GaugeFieldD u_ckpt = bench::thermalized(geo_ckpt, 5.9, 45);
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "bench_resilience.ckpt")
          .string();
  const HmcParams hp{.beta = 5.9, .trajectory_length = 0.5, .steps = 8,
                     .seed = 43};
  double t_save = 1e300, t_load = 1e300;
  GaugeFieldD v(geo_ckpt);
  for (int i = 0; i < 5; ++i) {  // best-of: one-shot I/O timing is noisy
    WallTimer ts;
    save_checkpoint(u_ckpt,
                    {.trajectories = 100, .accepted = 78, .params = hp},
                    ckpt);
    t_save = std::min(t_save, ts.seconds());
    WallTimer tl;
    (void)load_checkpoint(v, ckpt);
    t_load = std::min(t_load, tl.seconds());
  }
  const auto ckpt_bytes = std::filesystem::file_size(ckpt);

  // Amortized cost: one trajectory vs one trajectory + checkpoint.
  GaugeFieldD uh(geo_ckpt);
  uh.set_random(SiteRngFactory(44));
  Hmc hmc(uh, hp);
  hmc.trajectory();  // warm-up
  double t_traj = 1e300;
  for (int i = 0; i < 2; ++i) {
    WallTimer tt;
    hmc.trajectory();
    t_traj = std::min(t_traj, tt.seconds());
  }
  const double ovh_every = 100.0 * t_save / t_traj;
  std::printf("checkpoint: %.2f MB, save %.2f ms (atomic write+CRC), load "
              "%.2f ms (verified)\n",
              static_cast<double>(ckpt_bytes) / 1e6, t_save * 1e3,
              t_load * 1e3);
  std::printf("trajectory %.1f ms -> checkpoint-every-1 overhead %.1f%%, "
              "every-10 %.2f%%\n",
              t_traj * 1e3, ovh_every, ovh_every / 10.0);
  std::filesystem::remove(ckpt);

  bench::rule("R3: modeled resilience surcharge at scale");
  std::printf("%16s | %14s %14s %10s\n", "machine",
              "t_comm[us] raw", "hardened", "ovh[%]");
  for (const auto& m : {blue_gene_q(), k_computer(), generic_cluster()}) {
    PerfModelOptions raw;
    PerfModelOptions hard;
    hard.checksummed_halo = true;
    hard.message_fault_prob = 0.015;  // the R1 injected fault load
    const DslashCost c0 = model_dslash({8, 8, 8, 8}, {2, 2, 2, 2}, m, raw);
    const DslashCost c1 = model_dslash({8, 8, 8, 8}, {2, 2, 2, 2}, m, hard);
    std::printf("%16s | %14.2f %14.2f %10.1f\n", m.name.c_str(),
                c0.t_comm * 1e6,
                c1.t_comm * 1e6, 100.0 * (c1.t_comm / c0.t_comm - 1.0));
  }
  std::printf("\nShape: CRC framing costs a streaming pass over the halo "
              "(surface term), and the expected-retransmit charge stays "
              "small while fault rates are percent-level — resilience "
              "rides the same surface-to-volume ratio that makes halo "
              "exchange scalable in the first place.\n");

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"experiment\": \"resilience-overhead\",\n"
       << "  \"lattice\": [" << L << ", " << L << ", " << L << ", " << T
       << "],\n"
       << "  \"grid\": [2, 2, 2, 2],\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"apply_ms_baseline\": " << t_base * 1e3 << ",\n"
       << "  \"apply_ms_checksummed\": " << t_crc * 1e3 << ",\n"
       << "  \"apply_ms_faulted\": " << t_fault * 1e3 << ",\n"
       << "  \"overhead_pct_checksummed\": " << ovh_crc << ",\n"
       << "  \"overhead_pct_faulted\": " << ovh_fault << ",\n"
       << "  \"faulted_crc_failures\": " << fault_stats.crc_failures
       << ",\n"
       << "  \"faulted_timeouts\": " << fault_stats.timeouts << ",\n"
       << "  \"faulted_retransmits\": " << fault_stats.retransmits << ",\n"
       << "  \"bit_identical_under_faults\": true,\n"
       << "  \"checkpoint_mb\": " << static_cast<double>(ckpt_bytes) / 1e6
       << ",\n"
       << "  \"checkpoint_save_ms\": " << t_save * 1e3 << ",\n"
       << "  \"checkpoint_load_ms\": " << t_load * 1e3 << ",\n"
       << "  \"trajectory_ms\": " << t_traj * 1e3 << ",\n"
       << "  \"checkpoint_every10_overhead_pct\": " << ovh_every / 10.0
       << "\n"
       << "}\n";
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
