// Experiment F3: mixed-precision speedup, measured. Double-precision CG
// vs float-inner defect-correction CG on the same systems: wall time,
// iteration overhead, final residual — the QUDA-style trade.
//
// --json <path> records per-kappa iteration counts and speedups;
// --quick shrinks the lattice and kappa sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dirac/compressed.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/mixed_cg.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace lqcd;
  using namespace lqcd::bench;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  const LatticeGeometry geo(quick ? Coord{4, 4, 4, 8}
                                  : Coord{8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 20, quick ? 6 : 8);
  GaugeFieldF uf(geo);
  convert_gauge(uf, u);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 21);
  const auto hv = static_cast<std::size_t>(geo.half_volume());

  std::printf("F3: mixed precision defect-correction CG vs pure double "
              "(%dx%dx%dx%d, beta=5.9, target 1e-10)\n",
              geo.dim(0), geo.dim(1), geo.dim(2), geo.dim(3));
  std::printf("%8s | %9s %9s | %9s %9s %7s | %8s %9s\n", "kappa",
              "dbl iter", "dbl[ms]", "mix iter", "mix[ms]", "cycles",
              "speedup", "iter ovh");

  const std::vector<double> kappas =
      quick ? std::vector<double>{0.118}
            : std::vector<double>{0.100, 0.110, 0.118, 0.124};
  std::string json_rows;
  for (const double kappa : kappas) {
    SchurWilsonOperator<double> sd(u, kappa);
    SchurWilsonOperator<float> sf(uf, kappa);
    NormalOperator<double> nd(sd);
    NormalOperator<float> nf(sf);

    aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xd(hv), xm(hv),
        tmp(hv);
    sd.prepare_rhs({bhat.data(), hv}, b.span());
    apply_dagger_g5<double>(sd, {bhat2.data(), hv}, {bhat.data(), hv},
                            {tmp.data(), hv});
    const std::span<const WilsonSpinorD> rhs(bhat2.data(), hv);

    SolverParams pd{.tol = 1e-10, .max_iterations = 40000};
    const SolverResult rd = cg_solve<double>(nd, {xd.data(), hv}, rhs, pd);

    MixedCgParams mp;
    mp.outer.tol = 1e-10;
    const SolverResult rm =
        mixed_cg_solve(nd, nf, {xm.data(), hv}, rhs, mp);

    const double speedup = rm.seconds > 0 ? rd.seconds / rm.seconds : 0.0;
    const double overhead =
        rd.iterations > 0
            ? static_cast<double>(rm.inner_iterations) / rd.iterations
            : 0.0;
    std::printf("%8.3f | %9d %9.2f | %9d %9.2f %7d | %7.2fx %8.2fx%s\n",
                kappa, rd.iterations, rd.seconds * 1e3,
                rm.inner_iterations, rm.seconds * 1e3, rm.outer_cycles,
                speedup, overhead,
                (rd.converged && rm.converged) ? "" : "  [!]");
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"kappa\": %.3f, \"double_iters\": %d, "
                  "\"mixed_inner_iters\": %d, \"outer_cycles\": %d, "
                  "\"speedup\": %.3f, \"converged\": %s}",
                  kappa, rd.iterations, rm.inner_iterations,
                  rm.outer_cycles, speedup,
                  (rd.converged && rm.converged) ? "true" : "false");
    if (!json_rows.empty()) json_rows += ",\n";
    json_rows += row;
  }

  // The third rung of the precision ladder: a 16-bit compressed inner
  // operator (full-lattice; storage-precision semantics) under the same
  // double outer loop. The interesting number is the cycle/iteration
  // overhead half pays relative to float.
  std::printf("\nprecision ladder at kappa=0.118 (full-lattice operator, "
              "target 1e-10):\n");
  std::printf("%8s | %10s %9s %8s\n", "inner", "iters", "time[ms]",
              "cycles");
  {
    const double kappa = 0.118;
    WilsonOperator<double> wd(u, kappa);
    WilsonOperator<float> wf(uf, kappa);
    HalfWilsonOperator wh(uf, kappa);
    NormalOperator<double> nd2(wd);
    NormalOperator<float> nf2(wf);
    NormalOperator<float> nh2(wh);
    FermionFieldD bb(geo), x(geo);
    fill_gaussian(bb.span(), 22);
    MixedCgParams mp;
    mp.outer.tol = 1e-10;
    for (const char* name : {"float", "half"}) {
      blas::zero(x.span());
      MixedCgParams m2 = mp;
      if (std::string(name) == "half") m2.inner_reduction = 1e-3;
      const SolverResult r = mixed_cg_solve(
          nd2, std::string(name) == "half"
                   ? static_cast<const LinearOperator<float>&>(nh2)
                   : static_cast<const LinearOperator<float>&>(nf2),
          x.span(), bb.span(), m2);
      std::printf("%8s | %10d %9.2f %8d%s\n", name, r.inner_iterations,
                  r.seconds * 1e3, r.outer_cycles,
                  r.converged ? "" : "  [!]");
    }
  }

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.mixed_precision/1\",\n"
       << "  \"experiment\": \"mixed-precision-cg\",\n"
       << "  \"lattice\": [" << geo.dim(0) << ", " << geo.dim(1) << ", "
       << geo.dim(2) << ", " << geo.dim(3) << "],\n"
       << "  \"kappas\": [\n" << json_rows << "\n  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: float inner solves run ~2x faster per iteration "
              "(half the memory traffic); defect correction pays a small "
              "iteration overhead (ratio slightly > 1) and still reaches "
              "the double-precision residual — net speedup ~1.5-2x, "
              "growing toward kappa_c where more work moves inside the "
              "cheap inner loop.\n");
  return 0;
}
