// Experiment F3: mixed-precision speedup, measured. Double-precision CG
// vs float-inner defect-correction CG on the same systems: wall time,
// iteration overhead, final residual — the QUDA-style trade.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "dirac/compressed.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/mixed_cg.hpp"

int main() {
  using namespace lqcd;
  using namespace lqcd::bench;

  const LatticeGeometry geo({8, 8, 8, 8});
  const GaugeFieldD u = thermalized(geo, 5.9, 20);
  GaugeFieldF uf(geo);
  convert_gauge(uf, u);
  FermionFieldD b(geo);
  fill_gaussian(b.span(), 21);
  const auto hv = static_cast<std::size_t>(geo.half_volume());

  std::printf("F3: mixed precision defect-correction CG vs pure double "
              "(8^4, beta=5.9, target 1e-10)\n");
  std::printf("%8s | %9s %9s | %9s %9s %7s | %8s %9s\n", "kappa",
              "dbl iter", "dbl[ms]", "mix iter", "mix[ms]", "cycles",
              "speedup", "iter ovh");

  for (const double kappa : {0.100, 0.110, 0.118, 0.124}) {
    SchurWilsonOperator<double> sd(u, kappa);
    SchurWilsonOperator<float> sf(uf, kappa);
    NormalOperator<double> nd(sd);
    NormalOperator<float> nf(sf);

    aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xd(hv), xm(hv),
        tmp(hv);
    sd.prepare_rhs({bhat.data(), hv}, b.span());
    apply_dagger_g5<double>(sd, {bhat2.data(), hv}, {bhat.data(), hv},
                            {tmp.data(), hv});
    const std::span<const WilsonSpinorD> rhs(bhat2.data(), hv);

    SolverParams pd{.tol = 1e-10, .max_iterations = 40000};
    const SolverResult rd = cg_solve<double>(nd, {xd.data(), hv}, rhs, pd);

    MixedCgParams mp;
    mp.outer.tol = 1e-10;
    const SolverResult rm =
        mixed_cg_solve(nd, nf, {xm.data(), hv}, rhs, mp);

    const double speedup = rm.seconds > 0 ? rd.seconds / rm.seconds : 0.0;
    const double overhead =
        rd.iterations > 0
            ? static_cast<double>(rm.inner_iterations) / rd.iterations
            : 0.0;
    std::printf("%8.3f | %9d %9.2f | %9d %9.2f %7d | %7.2fx %8.2fx%s\n",
                kappa, rd.iterations, rd.seconds * 1e3,
                rm.inner_iterations, rm.seconds * 1e3, rm.outer_cycles,
                speedup, overhead,
                (rd.converged && rm.converged) ? "" : "  [!]");
  }

  // The third rung of the precision ladder: a 16-bit compressed inner
  // operator (full-lattice; storage-precision semantics) under the same
  // double outer loop. The interesting number is the cycle/iteration
  // overhead half pays relative to float.
  std::printf("\nprecision ladder at kappa=0.118 (full-lattice operator, "
              "target 1e-10):\n");
  std::printf("%8s | %10s %9s %8s\n", "inner", "iters", "time[ms]",
              "cycles");
  {
    const double kappa = 0.118;
    WilsonOperator<double> wd(u, kappa);
    WilsonOperator<float> wf(uf, kappa);
    HalfWilsonOperator wh(uf, kappa);
    NormalOperator<double> nd2(wd);
    NormalOperator<float> nf2(wf);
    NormalOperator<float> nh2(wh);
    FermionFieldD bb(geo), x(geo);
    fill_gaussian(bb.span(), 22);
    MixedCgParams mp;
    mp.outer.tol = 1e-10;
    for (const char* name : {"float", "half"}) {
      blas::zero(x.span());
      MixedCgParams m2 = mp;
      if (std::string(name) == "half") m2.inner_reduction = 1e-3;
      const SolverResult r = mixed_cg_solve(
          nd2, std::string(name) == "half"
                   ? static_cast<const LinearOperator<float>&>(nh2)
                   : static_cast<const LinearOperator<float>&>(nf2),
          x.span(), bb.span(), m2);
      std::printf("%8s | %10d %9.2f %8d%s\n", name, r.inner_iterations,
                  r.seconds * 1e3, r.outer_cycles,
                  r.converged ? "" : "  [!]");
    }
  }
  std::printf("\nShape: float inner solves run ~2x faster per iteration "
              "(half the memory traffic); defect correction pays a small "
              "iteration overhead (ratio slightly > 1) and still reaches "
              "the double-precision residual — net speedup ~1.5-2x, "
              "growing toward kappa_c where more work moves inside the "
              "cheap inner loop.\n");
  return 0;
}
