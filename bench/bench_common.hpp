#pragma once
// Shared helpers for the experiment harness binaries.

#include <cstdio>
#include <fstream>
#include <span>
#include <string>

#include "gauge/gauge_field.hpp"
#include "gauge/heatbath.hpp"
#include "lattice/field.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace lqcd::bench {

/// Write a finished json::Writer document to `path` (the --json artifact
/// every bench emits), with a trailing newline and a console note.
inline void write_json(const std::string& path, const json::Writer& w) {
  std::ofstream os(path);
  os << w.str() << "\n";
  if (!os) throw Error("failed to write " + path);
  std::printf("wrote %s\n", path.c_str());
}

/// Quenched, mildly thermalized configuration for solver experiments.
inline GaugeFieldD thermalized(const LatticeGeometry& geo, double beta,
                               std::uint64_t seed, int sweeps = 8) {
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = beta, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < sweeps; ++i) hb.sweep();
  return u;
}

inline void fill_gaussian(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

template <typename T>
std::span<const WilsonSpinor<T>> cspan(std::span<WilsonSpinor<T>> s) {
  return {s.data(), s.size()};
}

inline void rule(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace lqcd::bench
