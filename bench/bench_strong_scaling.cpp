// Experiment F1: strong scaling of the even-odd CG solver to O(10^4)
// nodes on BG/Q- and K-computer-class machines — the paper's headline
// figure, regenerated from the calibrated analytic model (the documented
// substitution for cluster access; the functional virtual cluster
// validates the communication structure the model charges for).
//
// --json <path> records the BG/Q 48^3x96 curve; --quick trims the node
// sweep for CI smoke runs.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "util/cli.hpp"

namespace {
void table(const char* title, const std::vector<lqcd::ScalingPoint>& pts) {
  std::printf("\n%s\n", title);
  std::printf("%8s %14s %12s %12s %9s %8s\n", "nodes", "local",
              "t_iter[us]", "TFLOP/s", "eff", "comm%");
  for (const auto& p : pts)
    std::printf("%8d %5dx%dx%dx%-3d %12.2f %12.1f %8.1f%% %7.1f%%\n",
                p.nodes, p.local[0], p.local[1], p.local[2], p.local[3],
                p.cost.t_iter * 1e6, p.sustained_tflops,
                100.0 * p.efficiency, 100.0 * p.cost.comm_fraction);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace lqcd;
  Cli cli(argc, argv);
  const std::string json_path = cli.get_string("json", "");
  const bool quick = cli.get_flag("quick");
  cli.finish();

  PerfModelOptions opt;
  opt.precision_bytes = 8;

  const std::vector<int> nodes =
      quick ? std::vector<int>{16, 64, 256, 1024}
            : std::vector<int>{16,   32,   64,    128,   256,  512,
                               1024, 2048, 4096,  8192,  16384, 32768,
                               49152, 65536};

  std::printf("F1: strong scaling, even-odd CG iteration "
              "(modeled; double precision, half-spinor halos)\n");

  for (const auto& machine : {blue_gene_q(), k_computer(),
                              generic_cluster()}) {
    char t1[128], t2[128];
    std::snprintf(t1, sizeof(t1), "=== 48^3 x 96 on %s ===",
                  machine.name.c_str());
    table(t1, strong_scaling({48, 48, 48, 96}, machine, opt, nodes));
    if (quick) continue;
    std::snprintf(t2, sizeof(t2), "=== 96^3 x 192 on %s ===",
                  machine.name.c_str());
    table(t2, strong_scaling({96, 96, 96, 192}, machine, opt, nodes));
  }

  if (!json_path.empty()) {
    const auto pts = strong_scaling({48, 48, 48, 96}, blue_gene_q(), opt,
                                    nodes);
    std::ofstream js(json_path);
    js << "{\n"
       << "  \"schema\": \"lqcd.bench.strong_scaling/1\",\n"
       << "  \"experiment\": \"strong-scaling\",\n"
       << "  \"machine\": \"" << blue_gene_q().name << "\",\n"
       << "  \"lattice\": [48, 48, 48, 96],\n"
       << "  \"points\": [\n";
    for (std::size_t i = 0; i < pts.size(); ++i)
      js << "    {\"nodes\": " << pts[i].nodes << ", \"t_iter_us\": "
         << pts[i].cost.t_iter * 1e6 << ", \"efficiency\": "
         << pts[i].efficiency << "}"
         << (i + 1 < pts.size() ? "," : "") << "\n";
    js << "  ]\n"
       << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  std::printf("\nShape: efficiency stays >90%% while the local volume is "
              "large, bends as surface/volume pushes halo bytes ahead of "
              "compute, and hits the latency/allreduce floor at the "
              "largest node counts. The bigger lattice scales further — "
              "exactly the crossover petascale papers report.\n");
  return 0;
}
