// Tests for twisted-mass Wilson fermions: operator structure, the exact
// normal-operator identity M^†M = M_w^†M_w + mu^2, spectrum protection,
// and the multishift-CG twisted-mass ladder.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/twisted.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(760));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 761});
    for (int i = 0; i < 5; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

TEST(TwistedMass, ReducesToWilsonAtZeroTwist) {
  WilsonOperator<double> w(gauge(), 0.12);
  TwistedMassOperator<double> tm(gauge(), 0.12, 0.0);
  FermionFieldD in(geo4()), a(geo4()), b(geo4());
  fill_random(in.span(), 762);
  w.apply(a.span(), in.span());
  tm.apply(b.span(), in.span());
  double err = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    err += norm2(a[s] - b[s]);
  EXPECT_EQ(err, 0.0);
}

TEST(TwistedMass, TwistTermIsIMuGamma5) {
  WilsonOperator<double> w(gauge(), 0.12);
  const double mu = 0.37;
  TwistedMassOperator<double> tm(gauge(), 0.12, mu);
  FermionFieldD in(geo4()), a(geo4()), b(geo4());
  fill_random(in.span(), 763);
  w.apply(a.span(), in.span());
  tm.apply(b.span(), in.span());
  double err = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    WilsonSpinorD twist = apply_gamma5(in[s]);
    twist *= Cplxd(0.0, mu);
    WilsonSpinorD want = a[s];
    want += twist;
    err += norm2(b[s] - want);
  }
  EXPECT_LT(err, 1e-24);
}

TEST(TwistedMass, DaggerIsAdjoint) {
  const double mu = 0.21;
  TwistedMassOperator<double> tm(gauge(), 0.12, mu);
  FermionFieldD phi(geo4()), psi(geo4()), mpsi(geo4()), mdphi(geo4()),
      tmp(geo4());
  fill_random(phi.span(), 764);
  fill_random(psi.span(), 765);
  tm.apply(mpsi.span(), psi.span());
  tm.apply_dagger(mdphi.span(), phi.span(), tmp.span());
  const Cplxd a = blas::dot(phi.span(), mpsi.span());
  const Cplxd b = blas::dot(mdphi.span(), psi.span());
  EXPECT_NEAR(a.re, b.re, 1e-9 * std::abs(a.re) + 1e-9);
  EXPECT_NEAR(a.im, b.im, 1e-9 * std::abs(a.re) + 1e-9);
}

TEST(TwistedMass, NormalOperatorIdentity) {
  // M(mu)^† M(mu) == M_w^† M_w + mu^2, exactly (cross terms cancel by
  // gamma5-hermiticity of the Wilson part).
  const double mu = 0.4;
  TwistedMassOperator<double> tm(gauge(), 0.12, mu);
  TwistedNormalOperator<double> ntm(tm);

  FermionFieldD in(geo4()), direct(geo4()), viaid(geo4()), tmp(geo4()),
      mid(geo4());
  fill_random(in.span(), 766);
  // Direct: M^†(M in).
  tm.apply(mid.span(), in.span());
  tm.apply_dagger(direct.span(), mid.span(), tmp.span());
  // Identity operator.
  ntm.apply(viaid.span(), in.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(direct[s] - viaid[s]);
    ref += norm2(direct[s]);
  }
  EXPECT_LT(err / ref, 1e-24);
}

TEST(TwistedMass, SpectrumBoundedBelowByMuSquared) {
  // <x, M^†M x> >= mu^2 <x, x> for every x.
  const double mu = 0.5;
  TwistedMassOperator<double> tm(gauge(), 0.124, mu);
  TwistedNormalOperator<double> ntm(tm);
  FermionFieldD x(geo4()), ax(geo4());
  fill_random(x.span(), 767);
  ntm.apply(ax.span(), x.span());
  const double rayleigh =
      blas::re_dot(x.span(), ax.span()) / blas::norm2(x.span());
  EXPECT_GE(rayleigh, mu * mu - 1e-10);
}

TEST(TwistedMass, TwistImprovesConditioning) {
  // CG on the twisted normal system converges faster for larger mu.
  FermionFieldD b(geo4());
  fill_random(b.span(), 768);
  SolverParams p{.tol = 1e-9, .max_iterations = 8000};
  int prev = 0;
  for (const double mu : {0.3, 0.1, 0.0}) {
    TwistedMassOperator<double> tm(gauge(), 0.124, mu);
    TwistedNormalOperator<double> ntm(tm);
    FermionFieldD x(geo4());
    const SolverResult r = cg_solve<double>(ntm, x.span(), b.span(), p);
    ASSERT_TRUE(r.converged) << mu;
    // Shrinking the twist worsens the conditioning: iterations rise.
    EXPECT_GE(r.iterations, prev) << mu;
    prev = r.iterations;
  }
}

TEST(TwistedMass, CgneSolvesTwistedSystem) {
  // Solve M(mu) x = b via M^†M x = M^† b and verify with the original
  // operator.
  const double mu = 0.25;
  TwistedMassOperator<double> tm(gauge(), 0.12, mu);
  TwistedNormalOperator<double> ntm(tm);
  FermionFieldD b(geo4()), rhs(geo4()), x(geo4()), check(geo4()),
      tmp(geo4());
  fill_random(b.span(), 769);
  tm.apply_dagger(rhs.span(), b.span(), tmp.span());
  SolverParams p{.tol = 1e-10, .max_iterations = 8000};
  ASSERT_TRUE(cg_solve<double>(ntm, x.span(), rhs.span(), p).converged);
  tm.apply(check.span(), x.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(check[s] - b[s]);
    ref += norm2(b[s]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-8);
}

TEST(TwistedMass, MultishiftSolvesWholeTwistLadder) {
  // One multishift CG on the Wilson normal system = solutions for every
  // twisted mass (shifts mu_k^2). Verify each against TwistedNormal.
  WilsonOperator<double> w(gauge(), 0.12);
  NormalOperator<double> nw(w);
  FermionFieldD b(geo4());
  fill_random(b.span(), 770);

  const std::vector<double> mus = {0.0, 0.2, 0.5};
  std::vector<double> shifts;
  for (double mu : mus) shifts.push_back(mu * mu);
  std::vector<aligned_vector<WilsonSpinorD>> x(shifts.size());
  SolverParams p{.tol = 1e-9, .max_iterations = 8000};
  ASSERT_TRUE(
      multishift_cg_solve<double>(nw, shifts, x, b.span(), p).converged);

  const std::size_t n = b.span().size();
  std::vector<WilsonSpinorD> ax(n);
  for (std::size_t k = 0; k < mus.size(); ++k) {
    TwistedMassOperator<double> tm(gauge(), 0.12, mus[k]);
    TwistedNormalOperator<double> ntm(tm);
    ntm.apply(std::span<WilsonSpinorD>(ax),
              std::span<const WilsonSpinorD>(x[k].data(), n));
    double err = 0.0, ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err += norm2(ax[i] - b.span()[i]);
      ref += norm2(b.span()[i]);
    }
    EXPECT_LT(std::sqrt(err / ref), 1e-7) << "mu " << mus[k];
  }
}

TEST(TwistedMass, Validation) {
  EXPECT_THROW(TwistedMassOperator<double>(gauge(), 0.12, -0.1), Error);
}

}  // namespace
}  // namespace lqcd
