// Tests for the staggered-fermion substrate: phases, anti-hermiticity,
// the normal-operator identity, solver correctness, free-field spectrum
// and the defining chiral property m_pi^2 ~ m_q.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/heatbath.hpp"
#include "spectro/effective_mass.hpp"
#include "staggered/staggered.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(880));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 881});
    for (int i = 0; i < 5; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<ColorVector<double>> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int c = 0; c < Nc; ++c)
      f[i].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

Cplxd field_dot(std::span<const ColorVector<double>> a,
                std::span<const ColorVector<double>> b) {
  Cplxd s{};
  for (std::size_t i = 0; i < a.size(); ++i) s += dot(a[i], b[i]);
  return s;
}

TEST(StaggeredPhases, SquareToOneAndMatchDefinition) {
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    const Coord x = geo4().coords(s);
    EXPECT_DOUBLE_EQ(staggered_phase(x, 0), 1.0);
    EXPECT_DOUBLE_EQ(staggered_phase(x, 1), (x[0] % 2) ? -1.0 : 1.0);
    EXPECT_DOUBLE_EQ(staggered_phase(x, 2),
                     ((x[0] + x[1]) % 2) ? -1.0 : 1.0);
    EXPECT_DOUBLE_EQ(staggered_phase(x, 3),
                     ((x[0] + x[1] + x[2]) % 2) ? -1.0 : 1.0);
  }
}

TEST(StaggeredDslash, AntiHermitian) {
  const GaugeFieldD links = make_fermion_links(gauge(),
                                               TimeBoundary::Antiperiodic);
  const auto n = static_cast<std::size_t>(geo4().volume());
  aligned_vector<ColorVector<double>> phi(n), chi(n), dphi(n), dchi(n);
  fill_random({phi.data(), n}, 882);
  fill_random({chi.data(), n}, 883);
  staggered_dslash({dchi.data(), n}, {chi.data(), n}, links);
  staggered_dslash({dphi.data(), n}, {phi.data(), n}, links);
  // <phi, D chi> = -<D phi, chi>
  const Cplxd a = field_dot({phi.data(), n}, {dchi.data(), n});
  const Cplxd b = field_dot({dphi.data(), n}, {chi.data(), n});
  EXPECT_NEAR(a.re, -b.re, 1e-9 * std::abs(a.re) + 1e-10);
  EXPECT_NEAR(a.im, -b.im, 1e-9 * std::abs(a.re) + 1e-10);
}

TEST(StaggeredDslash, KillsConstantOnFreeField) {
  GaugeFieldD u(geo4());
  u.set_unit();
  const GaugeFieldD links = make_fermion_links(u, TimeBoundary::Periodic);
  const auto n = static_cast<std::size_t>(geo4().volume());
  aligned_vector<ColorVector<double>> c(n), dc(n);
  for (auto& v : c) v.c[1] = Cplxd(1.0, -0.5);
  staggered_dslash({dc.data(), n}, {c.data(), n}, links);
  double s = 0.0;
  for (const auto& v : dc) s += norm2(v);
  EXPECT_LT(s, 1e-26);
}

TEST(StaggeredOperatorTest, NormalIdentity) {
  // apply_normal must equal M^†(M x) computed by composition, with
  // M^† = m - D (anti-hermitian D).
  StaggeredOperator m(gauge(), 0.1);
  const GaugeFieldD links = make_fermion_links(gauge(),
                                               TimeBoundary::Antiperiodic);
  const auto n = static_cast<std::size_t>(geo4().volume());
  aligned_vector<ColorVector<double>> x(n), mx(n), dmx(n), want(n),
      got(n);
  fill_random({x.data(), n}, 884);
  m.apply({mx.data(), n}, {x.data(), n});
  staggered_dslash({dmx.data(), n}, {mx.data(), n}, links);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = mx[i];
    want[i] *= 0.1;
    want[i] -= dmx[i];
  }
  m.apply_normal({got.data(), n}, {x.data(), n});
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ColorVector<double> d = got[i];
    d -= want[i];
    err += norm2(d);
    ref += norm2(want[i]);
  }
  EXPECT_LT(err / ref, 1e-24);
}

TEST(StaggeredOperatorTest, RejectsNonPositiveMass) {
  EXPECT_THROW(StaggeredOperator(gauge(), 0.0), Error);
  EXPECT_THROW(StaggeredOperator(gauge(), -0.1), Error);
}

TEST(StaggeredCgTest, SolvesNormalSystem) {
  StaggeredOperator m(gauge(), 0.08);
  const auto n = static_cast<std::size_t>(geo4().volume());
  aligned_vector<ColorVector<double>> b(n), x(n), check(n);
  fill_random({b.data(), n}, 885);
  const StaggeredSolveResult r =
      staggered_cg(m, {x.data(), n}, {b.data(), n}, 1e-10, 10000);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-10);
  m.apply_normal({check.data(), n}, {x.data(), n});
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ColorVector<double> d = check[i];
    d -= b[i];
    err += norm2(d);
    ref += norm2(b[i]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-9);
}

TEST(StaggeredCgTest, CriticalSlowingInMass) {
  const auto n = static_cast<std::size_t>(geo4().volume());
  aligned_vector<ColorVector<double>> b(n), x(n);
  fill_random({b.data(), n}, 886);
  int prev = 0;
  for (const double mass : {0.4, 0.15, 0.05}) {
    StaggeredOperator m(gauge(), mass);
    for (auto& v : x) v = ColorVector<double>{};
    const StaggeredSolveResult r =
        staggered_cg(m, {x.data(), n}, {b.data(), n}, 1e-9, 20000);
    ASSERT_TRUE(r.converged) << mass;
    EXPECT_GT(r.iterations, prev) << mass;
    prev = r.iterations;
  }
}

TEST(StaggeredPion, FreeFieldMassMatchesDispersion) {
  // Free Goldstone pion: m_pi = 2 asinh(m_q). Staggered correlators carry
  // a (-1)^t oscillating taste partner, so the clean effective mass uses
  // even timeslices only: m(t) = log(C(t)/C(t+2)) / 2. The antiperiodic
  // free quark also has an exact zero crossing at t = T/2 — a known
  // free-field feature excluded from the checks.
  const LatticeGeometry geo({4, 4, 4, 32});
  GaugeFieldD u(geo);
  u.set_unit();
  const double mass = 0.3;
  const StaggeredPionResult r =
      staggered_pion_correlator(u, mass, {0, 0, 0, 0}, 1e-11);
  ASSERT_TRUE(r.converged);
  for (int t = 0; t < 16; ++t)
    EXPECT_GT(r.correlator[static_cast<std::size_t>(t)], 0.0) << t;
  EXPECT_NEAR(r.correlator[16], 0.0, 1e-20);  // exact midpoint zero
  const double want = 2.0 * staggered_free_quark_energy(mass);
  for (int t = 4; t <= 6; t += 2) {
    const double meff2 =
        0.5 * std::log(r.correlator[static_cast<std::size_t>(t)] /
                       r.correlator[static_cast<std::size_t>(t + 2)]);
    EXPECT_NEAR(meff2, want, 0.02) << t;
  }
}

TEST(StaggeredPion, FreeCorrelatorSymmetricAndSourceInvariant) {
  // Per-configuration t <-> T-t symmetry is exact on the free field (a
  // thermalized config is only symmetric on average); also the correlator
  // must not depend on where the (spatially shifted) source sits.
  const LatticeGeometry geo({4, 4, 4, 8});
  GaugeFieldD u(geo);
  u.set_unit();
  const StaggeredPionResult r0 =
      staggered_pion_correlator(u, 0.3, {0, 0, 0, 0}, 1e-10);
  const StaggeredPionResult r1 =
      staggered_pion_correlator(u, 0.3, {1, 0, 2, 2}, 1e-10);
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r1.converged);
  const int lt = 8;
  for (int t = 1; t < lt; ++t) {
    if (t == lt / 2) continue;  // exact free-field midpoint zero (0/0)
    EXPECT_NEAR(r0.correlator[static_cast<std::size_t>(t)] /
                    r0.correlator[static_cast<std::size_t>(lt - t)],
                1.0, 1e-8)
        << t;
    EXPECT_NEAR(r1.correlator[static_cast<std::size_t>(t)] /
                    r0.correlator[static_cast<std::size_t>(t)],
                1.0, 1e-8)
        << t;
  }
}

TEST(StaggeredPion, ThermalizedCorrelatorPositive) {
  const LatticeGeometry geo({4, 4, 4, 8});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(887));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = 888});
  for (int i = 0; i < 4; ++i) hb.sweep();
  const StaggeredPionResult r =
      staggered_pion_correlator(u, 0.15, {1, 0, 2, 0}, 1e-9);
  ASSERT_TRUE(r.converged);
  for (double c : r.correlator) EXPECT_GT(c, 0.0);
  EXPECT_GT(r.total_iterations, 0);
}

TEST(StaggeredPion, ChiralBehaviourOfGoldstoneMass) {
  // The staggered Goldstone pion: m_pi^2 roughly linear in m_q — the
  // chiral property that makes staggered quarks cheap near the chiral
  // limit. Check m_pi^2 / m_q is much flatter than m_pi / m_q.
  const LatticeGeometry geo({4, 4, 4, 16});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(889));
  Heatbath hb(u, {.beta = 6.2, .or_per_hb = 2, .seed = 890});
  for (int i = 0; i < 8; ++i) hb.sweep();

  auto pion_mass = [&](double mq) {
    const StaggeredPionResult r =
        staggered_pion_correlator(u, mq, {0, 0, 0, 0}, 1e-9);
    EXPECT_TRUE(r.converged);
    // Even-slice mass (oscillating partner removed).
    return 0.5 * std::log(r.correlator[4] / r.correlator[6]);
  };
  const double m1 = pion_mass(0.10);
  const double m2 = pion_mass(0.30);
  EXPECT_GT(m2, m1);
  // Goldstone scaling: m_pi^2 ratio tracks the quark-mass ratio much
  // more closely than m_pi itself does.
  const double quad_ratio = (m2 * m2) / (m1 * m1);
  EXPECT_NEAR(quad_ratio, 3.0, 1.4);  // m_q ratio is 3
}

}  // namespace
}  // namespace lqcd
