// Tests for the multi-RHS block layer: the fused dslash must be
// bit-identical per column to the scalar kernels (the property that makes
// block solves safe to mix with scalar ones in a campaign), and block CG
// must agree with column-by-column even-odd CG to solver tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dirac/block.hpp"
#include "dirac/eo.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/block_cg.hpp"
#include "solver/factory.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& shared_gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(310));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 311});
    for (int i = 0; i < 6; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

bool bit_identical(std::span<const WilsonSpinorD> a,
                   std::span<const WilsonSpinorD> b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        if (a[i].s[s].c[c] != b[i].s[s].c[c]) return false;
  return true;
}

/// K distinct full-volume fields with span views over them.
struct BlockFields {
  explicit BlockFields(int k, std::uint64_t seed = 0) {
    for (int i = 0; i < k; ++i) {
      fields.emplace_back(geo4());
      if (seed) fill_random(fields.back().span(), seed + std::uint64_t(i));
    }
    for (auto& f : fields) {
      mut.push_back(f.span());
      con.emplace_back(f.span().data(), f.span().size());
    }
  }
  std::vector<FermionFieldD> fields;
  std::vector<SpinorSpanD> mut;
  std::vector<CSpinorSpanD> con;
};

TEST(BlockDslash, BitIdenticalToScalarPerColumn) {
  const int K = 5;
  BlockFields in(K, 2000), out(K);
  const GaugeFieldD links = make_fermion_links(shared_gauge(),
                                               TimeBoundary::Antiperiodic);
  for (const int parity : {0, 1}) {
    dslash_parity_block<double>(out.mut, in.con, links, parity);
    for (int k = 0; k < K; ++k) {
      FermionFieldD ref(geo4());
      dslash_parity<double>(ref.span(), in.con[std::size_t(k)], links,
                            parity);
      const std::int64_t hv = geo4().half_volume();
      const std::size_t base = parity == 0 ? 0 : std::size_t(hv);
      // Only the target-parity block is defined output.
      const CSpinorSpanD refc(ref.span().data(), ref.span().size());
      EXPECT_TRUE(bit_identical(
          out.con[std::size_t(k)].subspan(base, std::size_t(hv)),
          refc.subspan(base, std::size_t(hv))))
          << "column " << k << " parity " << parity;
    }
  }
}

TEST(BlockSchur, ApplyMatchesScalarSchurBitwise) {
  const int K = 4;
  const double kappa = 0.122;
  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  BlockSchurWilsonOperatorD block(shared_gauge(), kappa);
  SchurWilsonOperator<double> scalar(shared_gauge(), kappa);

  aligned_vector<WilsonSpinorD> in(hv * K), out(hv * K), ref(hv);
  fill_random({in.data(), in.size()}, 2100);
  std::vector<SpinorSpanD> outs;
  std::vector<CSpinorSpanD> ins;
  for (int k = 0; k < K; ++k) {
    outs.emplace_back(out.data() + std::size_t(k) * hv, hv);
    ins.emplace_back(in.data() + std::size_t(k) * hv, hv);
  }
  block.apply(outs, ins);
  for (int k = 0; k < K; ++k) {
    scalar.apply({ref.data(), hv}, ins[std::size_t(k)]);
    EXPECT_TRUE(bit_identical(outs[std::size_t(k)], {ref.data(), hv}))
        << "column " << k;
  }
}

TEST(BlockCg, MatchesColumnEoCgSolutions) {
  const int K = 3;
  const double kappa = 0.120;
  SolverConfig cfg;
  cfg.kappa = kappa;
  cfg.base = {.tol = 1e-9, .max_iterations = 4000};

  BlockFields b(K, 2200), x_block(K), x_col(K);
  auto block = make_block_solver(shared_gauge(), SolverKind::BlockCg, cfg, K);
  EXPECT_EQ(block->name(), "block_cg");
  EXPECT_EQ(block->max_rhs(), K);
  const std::vector<SolverResult> rs = block->solve(x_block.mut, b.con);
  ASSERT_EQ(rs.size(), std::size_t(K));
  for (const SolverResult& r : rs) {
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.relative_residual, 1e-8);
  }

  auto column = make_solver(shared_gauge(), SolverKind::EoCg, cfg);
  for (int k = 0; k < K; ++k) {
    const SolverResult r =
        column->solve(x_col.mut[std::size_t(k)], b.con[std::size_t(k)]);
    EXPECT_TRUE(r.converged);
    // Both pipelines solve M x = b to 1e-9: the solutions agree to the
    // square root of that in the worst case; demand much better.
    double diff = 0.0, ref = 0.0;
    for (std::size_t i = 0; i < x_col.mut[std::size_t(k)].size(); ++i) {
      diff += norm2(x_block.mut[std::size_t(k)][i] -
                    x_col.mut[std::size_t(k)][i]);
      ref += norm2(x_col.mut[std::size_t(k)][i]);
    }
    EXPECT_LT(std::sqrt(diff / ref), 1e-6) << "column " << k;
  }
}

TEST(BlockCg, WidthOneMatchesScalarRecursion) {
  // K = 1 runs the same per-column recursion as scalar eo-CG on the same
  // operator arithmetic, so iteration counts must agree exactly.
  const double kappa = 0.118;
  SolverConfig cfg;
  cfg.kappa = kappa;
  cfg.base = {.tol = 1e-8, .max_iterations = 4000};
  BlockFields b(1, 2300), x1(1), x2(1);

  auto block = make_block_solver(shared_gauge(), SolverKind::BlockCg, cfg, 1);
  auto scalar = make_solver(shared_gauge(), SolverKind::EoCg, cfg);
  const SolverResult rb = block->solve(x1.mut, b.con)[0];
  const SolverResult rs = scalar->solve(x2.mut[0], b.con[0]);
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rb.iterations, rs.iterations);
  EXPECT_TRUE(bit_identical(x1.con[0], x2.con[0]));
}

TEST(BlockCg, ZeroRhsColumnConvergesInstantly) {
  const int K = 2;
  SolverConfig cfg;
  cfg.kappa = 0.12;
  cfg.base = {.tol = 1e-9, .max_iterations = 2000};
  BlockFields b(K, 2400), x(K);
  blas::zero(b.mut[1]);  // column 1: b = 0 -> x = 0, zero iterations
  auto block = make_block_solver(shared_gauge(), SolverKind::BlockCg, cfg, K);
  const std::vector<SolverResult> rs = block->solve(x.mut, b.con);
  EXPECT_TRUE(rs[0].converged);
  EXPECT_GT(rs[0].iterations, 0);
  EXPECT_TRUE(rs[1].converged);
  EXPECT_EQ(rs[1].iterations, 0);
  double n = 0.0;
  for (std::size_t i = 0; i < x.mut[1].size(); ++i) n += norm2(x.mut[1][i]);
  EXPECT_EQ(n, 0.0);
}

TEST(BlockSolverFactory, ColumnFallbackHandlesAnyKind) {
  // Non-block kinds are wrapped column-by-column behind the same
  // interface: campaign code can switch solver kinds freely.
  SolverConfig cfg;
  cfg.kappa = 0.12;
  cfg.base = {.tol = 1e-7, .max_iterations = 4000};
  BlockFields b(2, 2500), x(2);
  auto solver = make_block_solver(shared_gauge(), SolverKind::MixedCg, cfg, 2);
  EXPECT_EQ(solver->name(), "mixed_cg");
  const std::vector<SolverResult> rs = solver->solve(x.mut, b.con);
  ASSERT_EQ(rs.size(), 2u);
  for (const SolverResult& r : rs) EXPECT_TRUE(r.converged);
}

TEST(BlockSolverFactory, ParsesBlockCgKind) {
  EXPECT_EQ(parse_solver_kind("block_cg"), SolverKind::BlockCg);
  EXPECT_EQ(parse_solver_kind("block"), SolverKind::BlockCg);
  EXPECT_EQ(to_string(SolverKind::BlockCg), std::string_view("block_cg"));
  EXPECT_THROW(parse_solver_kind("block_bicg"), Error);
}

TEST(BlockSchur, RejectsBadBlockShapes) {
  BlockSchurWilsonOperatorD op(shared_gauge(), 0.12,
                               TimeBoundary::Antiperiodic, 2);
  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> buf(hv * 3);
  std::vector<SpinorSpanD> outs;
  std::vector<CSpinorSpanD> ins;
  for (int k = 0; k < 3; ++k) {
    outs.emplace_back(buf.data() + std::size_t(k) * hv, hv);
    ins.emplace_back(buf.data() + std::size_t(k) * hv, hv);
  }
  EXPECT_THROW(op.apply(outs, ins), Error);  // 3 columns > max_rhs 2
  outs.resize(2);
  ins.resize(2);
  ins[1] = CSpinorSpanD(buf.data(), hv / 2);  // wrong span length
  EXPECT_THROW(op.apply(outs, ins), Error);
}

}  // namespace
}  // namespace lqcd
