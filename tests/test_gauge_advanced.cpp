// Tests for the advanced gauge observables and smoothing: Wilson loops /
// static potential, stout smearing and the Wilson (gradient) flow.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/flow.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "gauge/smear.hpp"
#include "gauge/wilson_loops.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 8});
  return geo;
}

const GaugeFieldD& thermal() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(800));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 2, .seed = 801});
    for (int i = 0; i < 10; ++i) hb.sweep();
    return v;
  }();
  return u;
}

GaugeFieldD copy_of(const GaugeFieldD& u) {
  GaugeFieldD v(u.geometry());
  for (std::int64_t s = 0; s < u.geometry().volume(); ++s)
    v.site(s) = u.site(s);
  return v;
}

// ---------------------------------------------------------------------------
// Wilson loops
// ---------------------------------------------------------------------------

TEST(WilsonLoops, UnitFieldGivesOne) {
  GaugeFieldD u(geo4());
  u.set_unit();
  EXPECT_NEAR(wilson_loop(u, 1, 1), 1.0, 1e-13);
  EXPECT_NEAR(wilson_loop(u, 2, 3), 1.0, 1e-13);
}

TEST(WilsonLoops, OneByOneIsTemporalPlaquette) {
  const GaugeFieldD& u = thermal();
  EXPECT_NEAR(wilson_loop(u, 1, 1), average_plaquette_temporal(u), 1e-12);
}

TEST(WilsonLoops, AreaLawDecay) {
  // Confinement: log W falls faster than perimeter, so
  // W(2,2) < W(1,2) < W(1,1).
  const GaugeFieldD& u = thermal();
  const double w11 = wilson_loop(u, 1, 1);
  const double w12 = wilson_loop(u, 1, 2);
  const double w22 = wilson_loop(u, 2, 2);
  EXPECT_GT(w11, w12);
  EXPECT_GT(w12, w22);
  EXPECT_GT(w22, 0.0);  // still resolvable at this beta/volume
}

TEST(WilsonLoops, TableMatchesDirectCalls) {
  const GaugeFieldD& u = thermal();
  const auto table = wilson_loop_table(u, 2, 3);
  ASSERT_EQ(table.size(), 2u);
  ASSERT_EQ(table[0].size(), 3u);
  EXPECT_DOUBLE_EQ(table[0][0], wilson_loop(u, 1, 1));
  EXPECT_DOUBLE_EQ(table[1][2], wilson_loop(u, 2, 3));
}

TEST(WilsonLoops, StaticPotentialRisesWithDistance) {
  const GaugeFieldD& u = thermal();
  const auto table = wilson_loop_table(u, 2, 3);
  const auto v = static_potential(table);
  ASSERT_EQ(v.size(), 2u);
  ASSERT_FALSE(std::isnan(v[0]));
  ASSERT_FALSE(std::isnan(v[1]));
  EXPECT_GT(v[1], v[0]);  // confining potential grows with R
  EXPECT_GT(v[0], 0.0);
}

TEST(WilsonLoops, CreutzRatioPositive) {
  const GaugeFieldD& u = thermal();
  const auto table = wilson_loop_table(u, 2, 2);
  const double chi = creutz_ratio(table, 2, 2);
  EXPECT_GT(chi, 0.0);  // positive string-tension estimate
  EXPECT_THROW(creutz_ratio(table, 1, 2), Error);
  EXPECT_THROW(creutz_ratio(table, 3, 2), Error);
}

TEST(WilsonLoops, Validation) {
  const GaugeFieldD& u = thermal();
  EXPECT_THROW(wilson_loop(u, 0, 1), Error);
  EXPECT_THROW(wilson_loop(u, 4, 1), Error);  // R = spatial extent
  EXPECT_THROW(wilson_loop(u, 1, 8), Error);  // T = temporal extent
}

// ---------------------------------------------------------------------------
// Stout smearing
// ---------------------------------------------------------------------------

TEST(Stout, UnitFieldFixedPoint) {
  GaugeFieldD u(geo4());
  u.set_unit();
  stout_smear(u, {.rho = 0.1, .iterations = 2});
  EXPECT_NEAR(average_plaquette(u), 1.0, 1e-12);
}

TEST(Stout, IncreasesPlaquetteAndStaysInGroup) {
  GaugeFieldD u = copy_of(thermal());
  const double before = average_plaquette(u);
  stout_smear(u, {.rho = 0.1, .iterations = 3});
  EXPECT_GT(average_plaquette(u), before);
  EXPECT_LT(u.max_unitarity_error(), 1e-11);
}

TEST(Stout, SmallRhoPerturbative) {
  // rho -> 0 must leave the field asymptotically unchanged.
  GaugeFieldD u = copy_of(thermal());
  GaugeFieldD v = copy_of(thermal());
  stout_smear_step(v, {.rho = 1e-8});
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) diff += norm2(u(s, mu) - v(s, mu));
  EXPECT_LT(std::sqrt(diff), 1e-4);
}

TEST(Stout, StrongerThanApePerStepAtMatchedParams) {
  // Both smearings smooth; this just pins that they act in the same
  // direction on the same field.
  GaugeFieldD a = copy_of(thermal());
  GaugeFieldD b = copy_of(thermal());
  stout_smear_step(a, {.rho = 0.1});
  ape_smear_step(b, {.alpha = 0.6, .iterations = 1, .spatial_only = false});
  EXPECT_GT(average_plaquette(a), average_plaquette(thermal()));
  EXPECT_GT(average_plaquette(b), average_plaquette(thermal()));
}

// ---------------------------------------------------------------------------
// Wilson flow
// ---------------------------------------------------------------------------

TEST(Flow, UnitFieldFixedPoint) {
  GaugeFieldD u(geo4());
  u.set_unit();
  wilson_flow_step(u, 0.05);
  EXPECT_NEAR(average_plaquette(u), 1.0, 1e-12);
  EXPECT_NEAR(flow_energy_density(u), 0.0, 1e-12);
}

TEST(Flow, EnergyDensityMatchesPlaquette) {
  // E = 2 * nplanes * Nc * (1 - <P>) by definition of both observables.
  const GaugeFieldD& u = thermal();
  const double e = flow_energy_density(u);
  const double p = average_plaquette(u);
  EXPECT_NEAR(e, 2.0 * 6.0 * 3.0 * (1.0 - p), 1e-9);
}

TEST(Flow, MonotonicallySmooths) {
  GaugeFieldD u = copy_of(thermal());
  const auto history = wilson_flow(u, {.step = 0.02, .steps = 5});
  ASSERT_EQ(history.size(), 6u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_LT(history[i].energy, history[i - 1].energy);
    EXPECT_GT(history[i].plaquette, history[i - 1].plaquette);
  }
  EXPECT_LT(u.max_unitarity_error(), 1e-10);
}

TEST(Flow, Rk3StepSizeConvergence) {
  // Flowing to the same t with halved steps must converge ~ eps^3
  // (third-order scheme): err(2h) / err(h) ~ 8. Allow a generous window.
  const double t_end = 0.12;
  auto flowed_plaq = [&](int steps) {
    GaugeFieldD u = copy_of(thermal());
    wilson_flow(u, {.step = t_end / steps, .steps = steps});
    return average_plaquette(u);
  };
  const double p2 = flowed_plaq(2);
  const double p4 = flowed_plaq(4);
  const double p8 = flowed_plaq(8);
  const double e_coarse = std::abs(p2 - p8);
  const double e_fine = std::abs(p4 - p8);
  ASSERT_GT(e_fine, 0.0);
  EXPECT_GT(e_coarse / e_fine, 4.0);  // >= 2nd order at worst
}

TEST(Flow, T2EGrowsFromZero) {
  GaugeFieldD u = copy_of(thermal());
  const auto history = wilson_flow(u, {.step = 0.02, .steps = 8});
  EXPECT_DOUBLE_EQ(history.front().t2e, 0.0);
  // t^2 E rises from zero at small flow time (E decays slower than t^2
  // grows in this regime).
  EXPECT_GT(history.back().t2e, history[1].t2e);
}

TEST(Flow, Validation) {
  GaugeFieldD u(geo4());
  u.set_unit();
  EXPECT_THROW(wilson_flow_step(u, 0.0), Error);
  EXPECT_THROW(wilson_flow(u, {.step = 0.01, .steps = -1}), Error);
}

}  // namespace
}  // namespace lqcd
