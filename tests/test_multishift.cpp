// Tests for multi-shift CG and the shifted-operator wrapper.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/multishift_cg.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(700));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 701});
    for (int i = 0; i < 5; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

TEST(ShiftedOperator, AddsShift) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  ShiftedOperator<double> as(a, 0.7);
  FermionFieldD x(geo4()), y1(geo4()), y2(geo4());
  fill_random(x.span(), 702);
  a.apply(y1.span(), x.span());
  as.apply(y2.span(), x.span());
  double err = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    WilsonSpinorD want = x[s];
    want *= 0.7;
    want += y1[s];
    err += norm2(y2[s] - want);
  }
  EXPECT_LT(err, 1e-20);
  EXPECT_TRUE(as.hermitian_positive());
  EXPECT_THROW(ShiftedOperator<double>(a, -0.1), Error);
}

TEST(MultiShiftCg, AllShiftsSolved) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  fill_random(b.span(), 703);

  const std::vector<double> shifts = {0.0, 0.05, 0.3, 1.5};
  std::vector<aligned_vector<WilsonSpinorD>> x(shifts.size());
  SolverParams p{.tol = 1e-9, .max_iterations = 4000};
  const MultiShiftResult r =
      multishift_cg_solve<double>(a, shifts, x, b.span(), p);
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.iterations, 0);

  // Verify every shifted system's true residual.
  const std::size_t n = b.span().size();
  std::vector<WilsonSpinorD> ax(n);
  for (std::size_t k = 0; k < shifts.size(); ++k) {
    ShiftedOperator<double> as(a, shifts[k]);
    as.apply(std::span<WilsonSpinorD>(ax),
             std::span<const WilsonSpinorD>(x[k].data(), n));
    double err = 0.0, ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err += norm2(ax[i] - b.span()[i]);
      ref += norm2(b.span()[i]);
    }
    EXPECT_LT(std::sqrt(err / ref), 1e-7) << "shift " << shifts[k];
    EXPECT_LE(r.shift_residuals[k], 1e-8) << "shift " << shifts[k];
  }
}

TEST(MultiShiftCg, MatchesIndividualSolves) {
  WilsonOperator<double> m(gauge(), 0.115);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  fill_random(b.span(), 704);
  const std::vector<double> shifts = {0.1, 0.8};
  std::vector<aligned_vector<WilsonSpinorD>> x(shifts.size());
  SolverParams p{.tol = 1e-10, .max_iterations = 4000};
  ASSERT_TRUE(
      multishift_cg_solve<double>(a, shifts, x, b.span(), p).converged);

  const std::size_t n = b.span().size();
  for (std::size_t k = 0; k < shifts.size(); ++k) {
    ShiftedOperator<double> as(a, shifts[k]);
    FermionFieldD xi(geo4());
    ASSERT_TRUE(cg_solve<double>(as, xi.span(), b.span(), p).converged);
    double diff = 0.0, ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diff += norm2(x[k][i] - xi.span()[i]);
      ref += norm2(xi.span()[i]);
    }
    EXPECT_LT(std::sqrt(diff / ref), 1e-6) << "shift " << shifts[k];
  }
}

TEST(MultiShiftCg, FrozenShiftResidualsRecordedAtConvergenceTime) {
  // Regression: shift_residuals[k] used to be evaluated against the FINAL
  // base residual even though zeta_k and x_k freeze when shift k
  // converges. A large shift (converges early) then reported a residual
  // orders of magnitude below what its iterate actually achieves. The
  // recorded value must track the true residual of x_k.
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  fill_random(b.span(), 705);

  // Widely separated shifts: 2.0 freezes long before 0.0 finishes.
  const std::vector<double> shifts = {0.0, 2.0};
  std::vector<aligned_vector<WilsonSpinorD>> x(shifts.size());
  SolverParams p{.tol = 1e-10, .max_iterations = 4000};
  const MultiShiftResult r =
      multishift_cg_solve<double>(a, shifts, x, b.span(), p);
  ASSERT_TRUE(r.converged);

  const std::size_t n = b.span().size();
  std::vector<WilsonSpinorD> ax(n);
  const double b_norm2 = blas::norm2(b.span());
  for (std::size_t k = 0; k < shifts.size(); ++k) {
    ShiftedOperator<double> as(a, shifts[k]);
    as.apply(std::span<WilsonSpinorD>(ax),
             std::span<const WilsonSpinorD>(x[k].data(), n));
    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) err += norm2(ax[i] - b.span()[i]);
    const double true_rel = std::sqrt(err / b_norm2);
    // Recurrence vs true residual agree to well within an order of
    // magnitude at freeze time; the stale-evaluation bug was off by the
    // full remaining CG reduction (many orders).
    EXPECT_GT(r.shift_residuals[k], 0.02 * true_rel)
        << "shift " << shifts[k] << " reported " << r.shift_residuals[k]
        << " true " << true_rel;
    EXPECT_LT(r.shift_residuals[k], 50.0 * true_rel + p.tol)
        << "shift " << shifts[k];
    EXPECT_LE(r.shift_residuals[k], p.tol) << "shift " << shifts[k];
  }
}

TEST(MultiShiftCg, SingleZeroShiftIsPlainCg) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4()), x_cg(geo4());
  fill_random(b.span(), 705);
  SolverParams p{.tol = 1e-10, .max_iterations = 4000};

  std::vector<aligned_vector<WilsonSpinorD>> x(1);
  const MultiShiftResult rm =
      multishift_cg_solve<double>(a, {0.0}, x, b.span(), p);
  const SolverResult rc = cg_solve<double>(a, x_cg.span(), b.span(), p);
  ASSERT_TRUE(rm.converged);
  ASSERT_TRUE(rc.converged);
  EXPECT_EQ(rm.iterations, rc.iterations);
  double diff = 0.0;
  for (std::size_t i = 0; i < b.span().size(); ++i)
    diff += norm2(x[0][i] - x_cg.span()[i]);
  EXPECT_EQ(diff, 0.0);  // identical recurrences, bit for bit
}

TEST(MultiShiftCg, LargerShiftsConvergeFaster) {
  WilsonOperator<double> m(gauge(), 0.124);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  fill_random(b.span(), 706);
  const std::vector<double> shifts = {0.0, 2.0};
  std::vector<aligned_vector<WilsonSpinorD>> x(shifts.size());
  SolverParams p{.tol = 1e-9, .max_iterations = 4000};
  const MultiShiftResult r =
      multishift_cg_solve<double>(a, shifts, x, b.span(), p);
  ASSERT_TRUE(r.converged);
  // The heavily shifted (well-conditioned) system's residual undershoots
  // the base system's at termination.
  EXPECT_LT(r.shift_residuals[1], r.shift_residuals[0] + 1e-12);
}

TEST(MultiShiftCg, ZeroRhs) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  std::vector<aligned_vector<WilsonSpinorD>> x(2);
  const MultiShiftResult r = multishift_cg_solve<double>(
      a, {0.0, 0.5}, x, b.span(), SolverParams{});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (const auto& xs : x)
    for (const auto& v : xs) EXPECT_EQ(norm2(v), 0.0);
}

TEST(MultiShiftCg, Validation) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4());
  std::vector<aligned_vector<WilsonSpinorD>> x(1);
  EXPECT_THROW(multishift_cg_solve<double>(a, {-0.1}, x, b.span(),
                                           SolverParams{}),
               Error);
  EXPECT_THROW(
      multishift_cg_solve<double>(a, {}, x, b.span(), SolverParams{}),
      Error);
  // Non-hermitian operator rejected.
  std::vector<aligned_vector<WilsonSpinorD>> x1(1);
  EXPECT_THROW(
      multishift_cg_solve<double>(m, {0.0}, x1, b.span(), SolverParams{}),
      Error);
}

}  // namespace
}  // namespace lqcd
