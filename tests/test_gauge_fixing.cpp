// Tests for Coulomb/Landau gauge fixing: functional maximization,
// residual convergence, gauge invariance of physical observables, and
// recovery of a known gauge transformation.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/gauge_fixing.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

GaugeFieldD thermal(std::uint64_t seed) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < 5; ++i) hb.sweep();
  return u;
}

// Apply a random gauge transformation g(x): U_mu(x) -> g(x) U g^†(x+mu).
void random_gauge_transform(GaugeFieldD& u, std::uint64_t seed) {
  const LatticeGeometry& geo = u.geometry();
  std::vector<ColorMatrixD> g(static_cast<std::size_t>(geo.volume()));
  SiteRngFactory rngs(seed);
  for (std::int64_t s = 0; s < geo.volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    g[static_cast<std::size_t>(s)] = random_su3<double>(rng);
  }
  GaugeFieldD v(geo);
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      v(s, mu) = mul_adj(mul(g[static_cast<std::size_t>(s)], u(s, mu)),
                         g[static_cast<std::size_t>(geo.fwd(s, mu))]);
  for (std::int64_t s = 0; s < geo.volume(); ++s) u.site(s) = v.site(s);
}

TEST(GaugeFixing, UnitFieldAlreadyFixed) {
  GaugeFieldD u(geo4());
  u.set_unit();
  EXPECT_NEAR(gauge_functional(u, GaugeCondition::Landau), 1.0, 1e-14);
  EXPECT_NEAR(gauge_fix_residual(u, GaugeCondition::Landau), 0.0, 1e-24);
  const GaugeFixResult r = fix_gauge(u, {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.sweeps, 1);
}

class GaugeFixCondition
    : public ::testing::TestWithParam<GaugeCondition> {};

TEST_P(GaugeFixCondition, ConvergesAndRaisesFunctional) {
  GaugeFieldD u = thermal(100);
  GaugeFixParams p;
  p.condition = GetParam();
  p.tolerance = 1e-10;
  const double f_before = gauge_functional(u, p.condition);
  const GaugeFixResult r = fix_gauge(u, p);
  EXPECT_TRUE(r.converged) << "theta " << r.theta;
  EXPECT_LT(r.theta, 1e-10);
  EXPECT_GT(r.functional, f_before);
  EXPECT_LE(r.functional, 1.0 + 1e-12);
  EXPECT_LT(u.max_unitarity_error(), 1e-11);
}

TEST_P(GaugeFixCondition, PlaquetteIsGaugeInvariant) {
  GaugeFieldD u = thermal(101);
  const double plaq_before = average_plaquette(u);
  GaugeFixParams p;
  p.condition = GetParam();
  fix_gauge(u, p);
  EXPECT_NEAR(average_plaquette(u), plaq_before, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Conditions, GaugeFixCondition,
                         ::testing::Values(GaugeCondition::Landau,
                                           GaugeCondition::Coulomb));

TEST(GaugeFixing, UndoesRandomGaugeTransformOfUnitField) {
  // A gauge transform of the free field has functional < 1; fixing must
  // push it back to (a copy of) the unit field: functional -> 1.
  GaugeFieldD u(geo4());
  u.set_unit();
  random_gauge_transform(u, 102);
  EXPECT_LT(gauge_functional(u, GaugeCondition::Landau), 0.999);
  GaugeFixParams p;
  p.condition = GaugeCondition::Landau;
  p.tolerance = 1e-12;
  p.max_sweeps = 5000;
  const GaugeFixResult r = fix_gauge(u, p);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.functional, 1.0, 1e-6);
}

TEST(GaugeFixing, GaugeOrbitReachesSameFunctional) {
  // Two gauge-equivalent fields must fix to (numerically) the same
  // maximal functional.
  GaugeFieldD a = thermal(103);
  GaugeFieldD b(geo4());
  for (std::int64_t s = 0; s < geo4().volume(); ++s) b.site(s) = a.site(s);
  random_gauge_transform(b, 104);
  GaugeFixParams p;
  p.tolerance = 1e-11;
  p.max_sweeps = 5000;
  const GaugeFixResult ra = fix_gauge(a, p);
  const GaugeFixResult rb = fix_gauge(b, p);
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  // Local maxima (Gribov copies) can in principle differ; on this tiny
  // thermalized lattice the sweeps land on the same orbit maximum.
  EXPECT_NEAR(ra.functional, rb.functional, 5e-4);
}

TEST(GaugeFixing, CoulombLeavesResidualOnlySpatial) {
  // Coulomb fixing drives the *spatial* residual to zero; the Landau
  // residual (including time links) generally stays finite.
  GaugeFieldD u = thermal(105);
  GaugeFixParams p;
  p.condition = GaugeCondition::Coulomb;
  p.tolerance = 1e-10;
  const GaugeFixResult r = fix_gauge(u, p);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(gauge_fix_residual(u, GaugeCondition::Coulomb), 1e-9);
  EXPECT_GT(gauge_fix_residual(u, GaugeCondition::Landau), 1e-6);
}

TEST(GaugeFixing, Validation) {
  GaugeFieldD u(geo4());
  u.set_unit();
  GaugeFixParams p;
  p.overrelax = 2.5;
  EXPECT_THROW(fix_gauge(u, p), Error);
  p.overrelax = 1.5;
  p.max_sweeps = 0;
  EXPECT_THROW(fix_gauge(u, p), Error);
}

}  // namespace
}  // namespace lqcd
