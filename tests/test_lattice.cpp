// Unit tests for lattice geometry: checkerboard indexing, neighbor tables,
// wrap detection and the field container.
#include <gtest/gtest.h>

#include <set>

#include "lattice/field.hpp"
#include "lattice/geometry.hpp"

namespace lqcd {
namespace {

TEST(Geometry, VolumeAndHalfVolume) {
  const LatticeGeometry geo({4, 6, 8, 10});
  EXPECT_EQ(geo.volume(), 4 * 6 * 8 * 10);
  EXPECT_EQ(geo.half_volume(), geo.volume() / 2);
}

TEST(Geometry, RejectsOddExtent) {
  EXPECT_THROW(LatticeGeometry({3, 4, 4, 4}), Error);
  EXPECT_THROW(LatticeGeometry({4, 4, 4, 5}), Error);
}

TEST(Geometry, RejectsTinyExtent) {
  EXPECT_THROW(LatticeGeometry({0, 4, 4, 4}), Error);
}

TEST(Geometry, CbIndexIsBijection) {
  const LatticeGeometry geo({4, 4, 6, 8});
  std::set<std::int64_t> seen;
  Coord x{};
  for (x[3] = 0; x[3] < geo.dim(3); ++x[3])
    for (x[2] = 0; x[2] < geo.dim(2); ++x[2])
      for (x[1] = 0; x[1] < geo.dim(1); ++x[1])
        for (x[0] = 0; x[0] < geo.dim(0); ++x[0]) {
          const std::int64_t cb = geo.cb_index(x);
          EXPECT_GE(cb, 0);
          EXPECT_LT(cb, geo.volume());
          EXPECT_TRUE(seen.insert(cb).second) << "duplicate cb index";
          // coords() must invert cb_index().
          EXPECT_EQ(geo.coords(cb), x);
        }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), geo.volume());
}

TEST(Geometry, ParityLayout) {
  const LatticeGeometry geo({4, 4, 4, 4});
  for (std::int64_t cb = 0; cb < geo.volume(); ++cb) {
    const Coord x = geo.coords(cb);
    EXPECT_EQ(LatticeGeometry::parity(x), geo.parity_of(cb));
    EXPECT_EQ(geo.parity_of(cb), cb < geo.half_volume() ? 0 : 1);
  }
}

TEST(Geometry, NeighborsInverseEachOther) {
  const LatticeGeometry geo({4, 6, 4, 8});
  for (std::int64_t cb = 0; cb < geo.volume(); ++cb)
    for (int mu = 0; mu < Nd; ++mu) {
      EXPECT_EQ(geo.bwd(geo.fwd(cb, mu), mu), cb);
      EXPECT_EQ(geo.fwd(geo.bwd(cb, mu), mu), cb);
    }
}

TEST(Geometry, NeighborsFlipParity) {
  const LatticeGeometry geo({4, 4, 4, 4});
  for (std::int64_t cb = 0; cb < geo.volume(); ++cb)
    for (int mu = 0; mu < Nd; ++mu) {
      EXPECT_NE(geo.parity_of(cb), geo.parity_of(geo.fwd(cb, mu)));
      EXPECT_NE(geo.parity_of(cb), geo.parity_of(geo.bwd(cb, mu)));
    }
}

TEST(Geometry, NeighborCoordinatesCorrect) {
  const LatticeGeometry geo({4, 6, 8, 4});
  for (std::int64_t cb = 0; cb < geo.volume(); ++cb) {
    const Coord x = geo.coords(cb);
    for (int mu = 0; mu < Nd; ++mu) {
      const Coord xp = geo.coords(geo.fwd(cb, mu));
      for (int nu = 0; nu < Nd; ++nu) {
        const int want =
            nu == mu ? (x[nu] + 1) % geo.dim(nu) : x[nu];
        EXPECT_EQ(xp[nu], want);
      }
    }
  }
}

TEST(Geometry, WrapFlags) {
  const LatticeGeometry geo({4, 4, 4, 6});
  int fwd_wraps = 0, bwd_wraps = 0;
  for (std::int64_t cb = 0; cb < geo.volume(); ++cb) {
    const Coord x = geo.coords(cb);
    for (int mu = 0; mu < Nd; ++mu) {
      EXPECT_EQ(geo.fwd_wraps(cb, mu), x[mu] == geo.dim(mu) - 1);
      EXPECT_EQ(geo.bwd_wraps(cb, mu), x[mu] == 0);
      fwd_wraps += geo.fwd_wraps(cb, mu);
      bwd_wraps += geo.bwd_wraps(cb, mu);
    }
  }
  // Exactly volume/dim sites wrap per direction.
  std::int64_t want = 0;
  for (int mu = 0; mu < Nd; ++mu) want += geo.volume() / geo.dim(mu);
  EXPECT_EQ(fwd_wraps, want);
  EXPECT_EQ(bwd_wraps, want);
}

TEST(Geometry, Equality) {
  const LatticeGeometry a({4, 4, 4, 4});
  const LatticeGeometry b({4, 4, 4, 4});
  const LatticeGeometry c({4, 4, 4, 6});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Field, ZeroInitializedAndSpans) {
  const LatticeGeometry geo({4, 4, 4, 4});
  FermionFieldD f(geo);
  EXPECT_EQ(f.volume(), geo.volume());
  EXPECT_EQ(f.span().size(), static_cast<std::size_t>(geo.volume()));
  double s = 0.0;
  for (const auto& psi : f.span()) s += norm2(psi);
  EXPECT_EQ(s, 0.0);
}

TEST(Field, ParitySpansPartitionStorage) {
  const LatticeGeometry geo({4, 4, 4, 6});
  FermionFieldD f(geo);
  auto even = f.parity_span(0);
  auto odd = f.parity_span(1);
  EXPECT_EQ(even.size(), static_cast<std::size_t>(geo.half_volume()));
  EXPECT_EQ(odd.size(), even.size());
  EXPECT_EQ(even.data() + even.size(), odd.data());
  EXPECT_EQ(even.data(), f.span().data());
}

TEST(Field, SiteAccessRoundTrip) {
  const LatticeGeometry geo({4, 4, 4, 4});
  FermionFieldD f(geo);
  const Coord x{1, 2, 3, 0};
  const std::int64_t cb = geo.cb_index(x);
  f[cb].s[2].c[1] = Cplxd(3.5, -1.0);
  EXPECT_DOUBLE_EQ(f[cb].s[2].c[1].re, 3.5);
  f.set_zero();
  EXPECT_DOUBLE_EQ(f[cb].s[2].c[1].re, 0.0);
}

TEST(Field, AlignedStorage) {
  const LatticeGeometry geo({4, 4, 4, 4});
  FermionFieldD f(geo);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f.data()) % kFieldAlignment,
            0u);
}

}  // namespace
}  // namespace lqcd
