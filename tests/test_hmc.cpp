// Tests for pure-gauge HMC: momentum statistics, force correctness
// against a numerical derivative of the action, integrator accuracy and
// reversibility, Metropolis behaviour, and agreement with heatbath.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/hmc.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

GaugeFieldD mildly_thermal(std::uint64_t seed, double beta = 5.6) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = beta, .or_per_hb = 1, .seed = seed + 7});
  for (int i = 0; i < 4; ++i) hb.sweep();
  return u;
}

double field_distance(const GaugeFieldD& a, const GaugeFieldD& b) {
  double d = 0.0;
  for (std::int64_t s = 0; s < a.geometry().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) d += norm2(a(s, mu) - b(s, mu));
  return std::sqrt(d);
}

TEST(Momenta, AntiHermitianTraceless) {
  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(10));
  for (std::int64_t s : {std::int64_t(0), std::int64_t(99)})
    for (int mu = 0; mu < Nd; ++mu) {
      const ColorMatrixD& m = p[s][static_cast<std::size_t>(mu)];
      EXPECT_LT(norm2(dagger(m) + m), 1e-26);
      EXPECT_NEAR(trace(m).re, 0.0, 1e-14);
      EXPECT_NEAR(trace(m).im, 0.0, 1e-14);
    }
}

TEST(Momenta, KineticEnergyStatistics) {
  // T = sum tr(p^† p); with 8 generators of variance 1/2 in Frobenius
  // norm, <T> = 4 per link.
  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(11));
  const double t = kinetic_energy(p);
  const double links = static_cast<double>(geo4().volume()) * Nd;
  EXPECT_NEAR(t / links, 4.0, 0.15);
}

TEST(Momenta, Reproducible) {
  MomentumField p1(geo4()), p2(geo4());
  draw_momenta(p1, SiteRngFactory(12));
  draw_momenta(p2, SiteRngFactory(12));
  double d = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      d += norm2(p1[s][static_cast<std::size_t>(mu)] -
                 p2[s][static_cast<std::size_t>(mu)]);
  EXPECT_EQ(d, 0.0);
}

TEST(Force, ZeroOnFreeField) {
  GaugeFieldD u(geo4());
  u.set_unit();
  Field<LinkSite<double>> f(geo4());
  gauge_force(f, u, 6.0);
  double n = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      n += norm2(f[s][static_cast<std::size_t>(mu)]);
  EXPECT_LT(n, 1e-24);
}

TEST(Force, MatchesNumericalActionDerivative) {
  // Along the flow dU/dt = p U, energy conservation requires
  //   dS/dt = -2 sum tr(p F).
  // Compare the analytic right-hand side with a central finite
  // difference of the Wilson action.
  const double beta = 5.6;
  const GaugeFieldD u0 = mildly_thermal(20, beta);
  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(21));

  Field<LinkSite<double>> f(geo4());
  gauge_force(f, u0, beta);
  double analytic = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) {
      // tr(p F) is real for anti-hermitian p, F.
      const ColorMatrixD pf = mul(p[s][static_cast<std::size_t>(mu)],
                                  f[s][static_cast<std::size_t>(mu)]);
      analytic += trace(pf).re;
    }
  analytic *= -2.0;

  const double eps = 1e-5;
  auto evolved = [&](double t) {
    GaugeFieldD u(geo4());
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      for (int mu = 0; mu < Nd; ++mu) {
        ColorMatrixD step = p[s][static_cast<std::size_t>(mu)];
        step *= t;
        u(s, mu) = mul(exp_matrix(step), u0(s, mu));
      }
    return wilson_action(u, beta);
  };
  const double numeric = (evolved(eps) - evolved(-eps)) / (2.0 * eps);
  EXPECT_NEAR(numeric, analytic,
              1e-5 * std::abs(analytic) + 1e-6);
}

TEST(Integrator, LeapfrogEnergyErrorScalesAsDtSquared) {
  const double beta = 5.6;
  auto delta_h = [&](int steps) {
    GaugeFieldD u = mildly_thermal(22, beta);
    MomentumField p(geo4());
    draw_momenta(p, SiteRngFactory(23));
    const double h0 = kinetic_energy(p) + wilson_action(u, beta);
    integrate(u, p, beta, 1.0, steps, Integrator::Leapfrog);
    const double h1 = kinetic_energy(p) + wilson_action(u, beta);
    return std::abs(h1 - h0);
  };
  const double coarse = delta_h(8);
  const double fine = delta_h(16);
  // O(dt^2) trajectory error: halving dt cuts |dH| by ~4.
  EXPECT_GT(coarse / fine, 2.5);
  EXPECT_LT(coarse / fine, 6.0);
}

TEST(Integrator, OmelyanBeatsLeapfrogAtEqualCost) {
  // Omelyan does 2 force evaluations per step; compare against leapfrog
  // with twice the steps (equal force count) — Omelyan should still win
  // or tie within noise at these step sizes.
  const double beta = 5.6;
  auto delta_h = [&](Integrator scheme, int steps) {
    GaugeFieldD u = mildly_thermal(24, beta);
    MomentumField p(geo4());
    draw_momenta(p, SiteRngFactory(25));
    const double h0 = kinetic_energy(p) + wilson_action(u, beta);
    integrate(u, p, beta, 1.0, steps, scheme);
    const double h1 = kinetic_energy(p) + wilson_action(u, beta);
    return std::abs(h1 - h0);
  };
  const double lf = delta_h(Integrator::Leapfrog, 16);
  const double om = delta_h(Integrator::Omelyan, 8);
  EXPECT_LT(om, lf * 1.2);
}

class ReversibilityTest : public ::testing::TestWithParam<Integrator> {};

TEST_P(ReversibilityTest, ForwardBackwardReturnsStart) {
  const double beta = 5.6;
  GaugeFieldD u = mildly_thermal(26, beta);
  GaugeFieldD u0(geo4());
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    u0.site(s) = u.site(s);
  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(27));

  integrate(u, p, beta, 0.5, 10, GetParam());
  // Momentum flip.
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) {
      ColorMatrixD& m = p[s][static_cast<std::size_t>(mu)];
      m *= -1.0;
    }
  integrate(u, p, beta, 0.5, 10, GetParam());
  EXPECT_LT(field_distance(u, u0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ReversibilityTest,
                         ::testing::Values(Integrator::Leapfrog,
                                           Integrator::Omelyan));

TEST(HmcDriver, RejectsBadParams) {
  GaugeFieldD u(geo4());
  u.set_unit();
  EXPECT_THROW(Hmc(u, {.beta = -1.0}), Error);
  EXPECT_THROW(Hmc(u, {.beta = 6.0, .steps = 0}), Error);
  EXPECT_THROW(Hmc(u, {.beta = 6.0, .trajectory_length = 0.0}), Error);
}

TEST(HmcDriver, HighAcceptanceWithFineSteps) {
  GaugeFieldD u = mildly_thermal(28);
  Hmc hmc(u, {.beta = 5.6,
              .trajectory_length = 0.5,
              .steps = 25,
              .integrator = Integrator::Omelyan,
              .seed = 29});
  int accepted = 0;
  const int n = 10;
  double max_dh = 0.0;
  for (int i = 0; i < n; ++i) {
    const TrajectoryResult r = hmc.trajectory();
    accepted += r.accepted;
    max_dh = std::max(max_dh, std::abs(r.delta_h));
  }
  EXPECT_GE(accepted, 8);  // fine integration: near-perfect acceptance
  EXPECT_LT(max_dh, 0.5);
  EXPECT_EQ(hmc.trajectories_run(), static_cast<std::uint64_t>(n));
}

TEST(HmcDriver, RejectRestoresConfiguration) {
  GaugeFieldD u = mildly_thermal(30);
  GaugeFieldD before(geo4());
  // Wildly coarse integration: |dH| huge -> essentially certain reject.
  Hmc hmc(u, {.beta = 5.6,
              .trajectory_length = 4.0,
              .steps = 1,
              .integrator = Integrator::Leapfrog,
              .seed = 31});
  bool saw_reject = false;
  for (int i = 0; i < 5 && !saw_reject; ++i) {
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      before.site(s) = u.site(s);
    const TrajectoryResult r = hmc.trajectory();
    if (!r.accepted) {
      saw_reject = true;
      EXPECT_EQ(field_distance(u, before), 0.0);
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(HmcDriver, PlaquetteAgreesWithHeatbath) {
  // HMC and heatbath sample the same distribution: plaquettes must agree
  // within loose Monte Carlo errors on this tiny box.
  const double beta = 5.6;

  GaugeFieldD u_hb(geo4());
  u_hb.set_random(SiteRngFactory(32));
  Heatbath hb(u_hb, {.beta = beta, .or_per_hb = 1, .seed = 33});
  double p_hb = 0.0;
  for (int i = 0; i < 15; ++i) hb.sweep();
  for (int i = 0; i < 15; ++i) p_hb += hb.sweep();
  p_hb /= 15.0;

  GaugeFieldD u_hmc = mildly_thermal(34, beta);
  Hmc hmc(u_hmc, {.beta = beta,
                  .trajectory_length = 1.0,
                  .steps = 12,
                  .integrator = Integrator::Omelyan,
                  .seed = 35});
  for (int i = 0; i < 10; ++i) hmc.trajectory();
  double p_hmc = 0.0;
  const int n = 20;
  for (int i = 0; i < n; ++i) p_hmc += hmc.trajectory().plaquette;
  p_hmc /= n;

  EXPECT_NEAR(p_hmc, p_hb, 0.03);
  EXPECT_GT(hmc.acceptance_rate(), 0.7);
}

TEST(HmcDriver, LinksStayInGroup) {
  GaugeFieldD u = mildly_thermal(36);
  Hmc hmc(u, {.beta = 5.6, .trajectory_length = 1.0, .steps = 10,
              .seed = 37});
  for (int i = 0; i < 3; ++i) hmc.trajectory();
  EXPECT_LT(u.max_unitarity_error(), 1e-10);
}

}  // namespace
}  // namespace lqcd
