// Tests for correlator I/O and the gauge-fixed wall-source pipeline.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gauge/gauge_fixing.hpp"
#include "gauge/heatbath.hpp"
#include "spectro/correlator.hpp"
#include "spectro/io.hpp"
#include "spectro/propagator.hpp"
#include "spectro/source.hpp"

namespace lqcd {
namespace {

class CorrelatorIoTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "lqcd_test_correlators.tsv")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CorrelatorIoTest, RoundTrip) {
  CorrelatorSet set;
  set.channels["pion"] = {1.0, 0.5, 0.25, 0.125};
  set.channels["rho"] = {0.9, 0.4, 0.2, 0.1};
  save_correlators(set, path_);
  const CorrelatorSet back = load_correlators(path_);
  ASSERT_EQ(back.channels.size(), 2u);
  ASSERT_EQ(back.timeslices(), 4u);
  for (const auto& [name, values] : set.channels) {
    ASSERT_TRUE(back.channels.count(name)) << name;
    for (std::size_t t = 0; t < values.size(); ++t)
      EXPECT_DOUBLE_EQ(back.channels.at(name)[t], values[t]);
  }
}

TEST_F(CorrelatorIoTest, FullPrecisionPreserved) {
  CorrelatorSet set;
  set.channels["c"] = {1.0 / 3.0, 2.3456789012345678e-15};
  save_correlators(set, path_);
  const CorrelatorSet back = load_correlators(path_);
  EXPECT_DOUBLE_EQ(back.channels.at("c")[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(back.channels.at("c")[1], 2.3456789012345678e-15);
}

TEST_F(CorrelatorIoTest, RejectsRaggedAndBadNames) {
  CorrelatorSet set;
  set.channels["a"] = {1.0, 2.0};
  set.channels["b"] = {1.0};
  EXPECT_THROW(save_correlators(set, path_), Error);
  CorrelatorSet set2;
  set2.channels["bad name"] = {1.0};
  EXPECT_THROW(save_correlators(set2, path_), Error);
  EXPECT_THROW(save_correlators(CorrelatorSet{}, path_), Error);
}

TEST_F(CorrelatorIoTest, RejectsCorruptFiles) {
  {
    std::ofstream os(path_);
    os << "not a correlator file\n";
  }
  EXPECT_THROW(load_correlators(path_), Error);
  {
    std::ofstream os(path_);
    os << "# t\tpion\n0\t1.0\n2\t0.5\n";  // non-contiguous t
  }
  EXPECT_THROW(load_correlators(path_), Error);
  {
    std::ofstream os(path_);
    os << "# t\tpion\trho\n0\t1.0\n";  // missing column
  }
  EXPECT_THROW(load_correlators(path_), Error);
  EXPECT_THROW(load_correlators("/nonexistent/file.tsv"), Error);
}

TEST(WallSourceSpectroscopy, CoulombFixedWallMatchesPointMass) {
  // The physics integration test for gauge fixing: wall sources are
  // gauge-variant, so they are measured on Coulomb-fixed configurations.
  // The extracted pion mass must agree with the point-source mass
  // (same spectrum, different overlaps).
  const LatticeGeometry geo({4, 4, 4, 12});
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(600));
  Heatbath hb(u, {.beta = 6.0, .or_per_hb = 2, .seed = 601});
  for (int i = 0; i < 8; ++i) hb.sweep();

  GaugeFixParams gp;
  gp.condition = GaugeCondition::Coulomb;
  gp.tolerance = 1e-9;
  const GaugeFixResult gr = fix_gauge(u, gp);
  ASSERT_TRUE(gr.converged);

  PropagatorParams params;
  params.kappa = 0.14;
  params.solver.tol = 1e-9;

  Propagator point(geo), wall(geo);
  compute_point_propagator(point, u, params, {0, 0, 0, 0});
  compute_propagator(wall, u, params,
                     [&](FermionFieldD& b, int s0, int c0) {
                       make_wall_source(b, 0, s0, c0);
                     });

  const Correlator cp = pion_correlator(point, 0);
  const Correlator cw = pion_correlator(wall, 0);
  for (double v : cw.c) EXPECT_GT(v, 0.0);

  // Compare decay rates over a mid-range window (different sources have
  // different excited-state contamination; use a generous tolerance).
  auto decay = [](const Correlator& c, int t0, int t1) {
    return std::log(c.c[static_cast<std::size_t>(t0)] /
                    c.c[static_cast<std::size_t>(t1)]) /
           (t1 - t0);
  };
  const double m_point = decay(cp, 3, 5);
  const double m_wall = decay(cw, 3, 5);
  EXPECT_NEAR(m_wall, m_point, 0.35 * m_point);
}

}  // namespace
}  // namespace lqcd
