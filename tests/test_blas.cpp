// Property tests for the field-level BLAS the solvers are built on.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

using VecD = aligned_vector<WilsonSpinorD>;
using VecF = aligned_vector<WilsonSpinorF>;

VecD random_vec(std::size_t n, std::uint64_t seed) {
  VecD v(n);
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < n; ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        v[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  return v;
}

std::span<const WilsonSpinorD> cs(const VecD& v) {
  return {v.data(), v.size()};
}
std::span<WilsonSpinorD> ms(VecD& v) { return {v.data(), v.size()}; }

class BlasSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlasSizes, NormMatchesDot) {
  VecD x = random_vec(GetParam(), 1);
  EXPECT_NEAR(blas::norm2(cs(x)), blas::dot(cs(x), cs(x)).re,
              1e-10 * blas::norm2(cs(x)));
  EXPECT_NEAR(blas::dot(cs(x), cs(x)).im, 0.0, 1e-10);
}

TEST_P(BlasSizes, AxpyLinearity) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 2), y = random_vec(n, 3), y2 = y;
  const double a = 0.37;
  blas::axpy(a, cs(x), ms(y));
  // check y == y2 + a x elementwise
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WilsonSpinorD want = x[i];
    want *= a;
    want += y2[i];
    err += norm2(y[i] - want);
  }
  EXPECT_LT(err, 1e-22 * static_cast<double>(n + 1));
}

TEST_P(BlasSizes, DotSesquilinearity) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 4), y = random_vec(n, 5);
  const Cplxd xy = blas::dot(cs(x), cs(y));
  const Cplxd yx = blas::dot(cs(y), cs(x));
  EXPECT_NEAR(xy.re, yx.re, 1e-9 * std::abs(xy.re) + 1e-12);
  EXPECT_NEAR(xy.im, -yx.im, 1e-9 * std::abs(xy.re) + 1e-12);
  // Cauchy-Schwarz.
  EXPECT_LE(norm2(xy),
            blas::norm2(cs(x)) * blas::norm2(cs(y)) * (1 + 1e-12));
}

TEST_P(BlasSizes, XpayMatchesDefinition) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 6), y = random_vec(n, 7), y0 = y;
  const double a = -1.25;
  blas::xpay(cs(x), a, ms(y));
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WilsonSpinorD want = y0[i];
    want *= a;
    want += x[i];
    err += norm2(y[i] - want);
  }
  EXPECT_LT(err, 1e-22 * static_cast<double>(n + 1));
}

TEST_P(BlasSizes, CaxpyComplexCoefficient) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 8), y = random_vec(n, 9), y0 = y;
  const Cplxd a(0.3, -0.9);
  blas::caxpy(a, cs(x), ms(y));
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    WilsonSpinorD want = x[i];
    want *= a;
    want += y0[i];
    err += norm2(y[i] - want);
  }
  EXPECT_LT(err, 1e-22 * static_cast<double>(n + 1));
}

TEST_P(BlasSizes, ZeroAndScale) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 10);
  blas::scale(0.5, ms(x));
  VecD y = random_vec(n, 10);
  EXPECT_NEAR(blas::norm2(cs(x)), 0.25 * blas::norm2(cs(y)), 1e-9);
  blas::zero(ms(x));
  EXPECT_EQ(blas::norm2(cs(x)), 0.0);
}

TEST_P(BlasSizes, ConvertRoundTripAccuracy) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 11);
  VecF f(n);
  VecD back(n);
  blas::convert(std::span<WilsonSpinorF>(f.data(), n), cs(x));
  blas::convert(ms(back), std::span<const WilsonSpinorF>(f.data(), n));
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += norm2(back[i] - x[i]);
    ref += norm2(x[i]);
  }
  if (n > 0) EXPECT_LT(std::sqrt(err / ref), 1e-7);
}

TEST_P(BlasSizes, DeterministicReductions) {
  const std::size_t n = GetParam();
  VecD x = random_vec(n, 12), y = random_vec(n, 13);
  const Cplxd d1 = blas::dot(cs(x), cs(y));
  const Cplxd d2 = blas::dot(cs(x), cs(y));
  EXPECT_EQ(d1.re, d2.re);
  EXPECT_EQ(d1.im, d2.im);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlasSizes,
                         ::testing::Values(0, 1, 7, 64, 1000));

TEST(Blas, SizeMismatchThrows) {
  VecD x = random_vec(4, 14), y = random_vec(5, 15);
  EXPECT_THROW(blas::axpy(1.0, cs(x), ms(y)), Error);
  EXPECT_THROW(blas::dot(cs(x), cs(y)), Error);
  EXPECT_THROW(blas::copy(ms(y), cs(x)), Error);
}

TEST(Blas, AxpyToThreeOperand) {
  VecD x = random_vec(16, 16), y = random_vec(16, 17), z(16);
  blas::axpy_to(cs(x), 2.0, cs(y), ms(z));
  double err = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    WilsonSpinorD want = y[i];
    want *= 2.0;
    want += x[i];
    err += norm2(z[i] - want);
  }
  EXPECT_LT(err, 1e-20);
}

}  // namespace
}  // namespace lqcd
