// Unit and property tests for the color/spin linear algebra:
// complex numbers, SU(3), spinors, the gamma algebra and the small dense
// matrices used by the clover term.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cplx.hpp"
#include "linalg/gamma.hpp"
#include "linalg/smallmat.hpp"
#include "linalg/spinor.hpp"
#include "linalg/su3.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

WilsonSpinorD random_spinor(CounterRng& rng) {
  WilsonSpinorD psi;
  for (int s = 0; s < Ns; ++s)
    for (int c = 0; c < Nc; ++c)
      psi.s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  return psi;
}

// ---------------------------------------------------------------------------
// Cplx
// ---------------------------------------------------------------------------

TEST(Cplx, Arithmetic) {
  const Cplxd a(1.0, 2.0), b(3.0, -1.0);
  const Cplxd s = a + b;
  EXPECT_DOUBLE_EQ(s.re, 4.0);
  EXPECT_DOUBLE_EQ(s.im, 1.0);
  const Cplxd p = a * b;  // (1+2i)(3-i) = 5 + 5i
  EXPECT_DOUBLE_EQ(p.re, 5.0);
  EXPECT_DOUBLE_EQ(p.im, 5.0);
}

TEST(Cplx, ConjAndNorm) {
  const Cplxd a(3.0, 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 25.0);
  EXPECT_DOUBLE_EQ(abs(a), 5.0);
  EXPECT_DOUBLE_EQ(conj(a).im, -4.0);
}

TEST(Cplx, MulConjIdentities) {
  const Cplxd a(1.5, -2.5), b(0.5, 3.0);
  const Cplxd x = mul_conj(a, b);
  const Cplxd y = a * conj(b);
  EXPECT_DOUBLE_EQ(x.re, y.re);
  EXPECT_DOUBLE_EQ(x.im, y.im);
  const Cplxd u = conj_mul(a, b);
  const Cplxd v = conj(a) * b;
  EXPECT_DOUBLE_EQ(u.re, v.re);
  EXPECT_DOUBLE_EQ(u.im, v.im);
}

TEST(Cplx, Division) {
  const Cplxd a(1.0, 1.0), b(2.0, -1.0);
  const Cplxd q = div(a, b);
  const Cplxd back = q * b;
  EXPECT_NEAR(back.re, a.re, 1e-15);
  EXPECT_NEAR(back.im, a.im, 1e-15);
}

TEST(Cplx, FmaAccumulate) {
  Cplxd acc(1.0, 0.0);
  fma_acc(acc, Cplxd(2.0, 1.0), Cplxd(1.0, 1.0));  // += 1 + 3i
  EXPECT_DOUBLE_EQ(acc.re, 2.0);
  EXPECT_DOUBLE_EQ(acc.im, 3.0);
}

TEST(Cplx, PrecisionConversion) {
  const Cplxd d(1.25, -0.5);
  const Cplxf f(d);
  EXPECT_FLOAT_EQ(f.re, 1.25f);
  const Cplxd back(f);
  EXPECT_DOUBLE_EQ(back.re, 1.25);
}

// ---------------------------------------------------------------------------
// SU(3)
// ---------------------------------------------------------------------------

class Su3Property : public ::testing::TestWithParam<int> {};

TEST_P(Su3Property, RandomMatrixIsSpecialUnitary) {
  CounterRng rng(100, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD u = random_su3<double>(rng);
  EXPECT_LT(unitarity_error(u), 1e-13);
  const Cplxd d = det(u);
  EXPECT_NEAR(d.re, 1.0, 1e-13);
  EXPECT_NEAR(d.im, 0.0, 1e-13);
}

TEST_P(Su3Property, GroupClosure) {
  CounterRng rng(101, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD a = random_su3<double>(rng);
  const ColorMatrixD b = random_su3<double>(rng);
  const ColorMatrixD ab = mul(a, b);
  EXPECT_LT(unitarity_error(ab), 1e-12);
  EXPECT_NEAR(det(ab).re, 1.0, 1e-12);
}

TEST_P(Su3Property, DaggerIsInverse) {
  CounterRng rng(102, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD u = random_su3<double>(rng);
  const ColorMatrixD w = mul(dagger(u), u) - unit_matrix<double>();
  EXPECT_LT(norm2(w), 1e-26);
}

TEST_P(Su3Property, AdjMulMatchesDaggerMul) {
  CounterRng rng(103, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD a = random_su3<double>(rng);
  const ColorMatrixD b = random_su3<double>(rng);
  const ColorMatrixD x = adj_mul(a, b);
  const ColorMatrixD y = mul(dagger(a), b);
  EXPECT_LT(norm2(x - y), 1e-26);
  const ColorMatrixD p = mul_adj(a, b);
  const ColorMatrixD q = mul(a, dagger(b));
  EXPECT_LT(norm2(p - q), 1e-26);
}

TEST_P(Su3Property, MatVecAgainstMatMat) {
  CounterRng rng(104, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD a = random_su3<double>(rng);
  ColorVectorD v;
  for (int i = 0; i < Nc; ++i) v.c[i] = Cplxd(rng.gaussian(), rng.gaussian());
  // (A^† A) v == v for unitary A.
  const ColorVectorD w = adj_mul(a, mul(a, v));
  EXPECT_LT(norm2(w - v), 1e-24);
}

TEST_P(Su3Property, TracelessAntihermProperties) {
  CounterRng rng(105, static_cast<std::uint64_t>(GetParam()));
  ColorMatrixD a;
  for (int r = 0; r < Nc; ++r)
    for (int c = 0; c < Nc; ++c)
      a.m[r][c] = Cplxd(rng.gaussian(), rng.gaussian());
  const ColorMatrixD p = traceless_antiherm(a);
  // Anti-hermitian: p^† = -p.
  EXPECT_LT(norm2(dagger(p) + p), 1e-26);
  // Traceless.
  EXPECT_NEAR(trace(p).re, 0.0, 1e-13);
  EXPECT_NEAR(trace(p).im, 0.0, 1e-13);
  // Projection is idempotent.
  EXPECT_LT(norm2(traceless_antiherm(p) - p), 1e-26);
}

TEST_P(Su3Property, ExpOfAlgebraIsUnitary) {
  CounterRng rng(106, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD p = random_algebra<double>(rng);
  const ColorMatrixD u = exp_matrix(p);
  EXPECT_LT(unitarity_error(u), 1e-12);
  EXPECT_NEAR(det(u).re, 1.0, 1e-11);
  EXPECT_NEAR(det(u).im, 0.0, 1e-11);
}

TEST_P(Su3Property, RandomAlgebraIsTracelessAntihermitian) {
  CounterRng rng(107, static_cast<std::uint64_t>(GetParam()));
  const ColorMatrixD p = random_algebra<double>(rng);
  EXPECT_LT(norm2(dagger(p) + p), 1e-26);
  EXPECT_NEAR(trace(p).re, 0.0, 1e-14);
  EXPECT_NEAR(trace(p).im, 0.0, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Su3Property, ::testing::Range(0, 20));

TEST(Su3, ExpZeroIsIdentity) {
  const ColorMatrixD u = exp_matrix(zero_matrix<double>());
  EXPECT_LT(norm2(u - unit_matrix<double>()), 1e-28);
}

TEST(Su3, ExpMatchesSeriesForSmallArgument) {
  CounterRng rng(108, 0);
  ColorMatrixD p = random_algebra<double>(rng);
  p *= 1e-3;
  const ColorMatrixD u = exp_matrix(p);
  // exp(p) ~ 1 + p + p^2/2
  ColorMatrixD approx = unit_matrix<double>();
  approx += p;
  ColorMatrixD p2 = mul(p, p);
  p2 *= 0.5;
  approx += p2;
  EXPECT_LT(std::sqrt(norm2(u - approx)), 1e-9);
}

TEST(Su3, ExpAdditivityForCommuting) {
  CounterRng rng(109, 0);
  ColorMatrixD p = random_algebra<double>(rng);
  ColorMatrixD p_half = p;
  p_half *= 0.5;
  const ColorMatrixD a = exp_matrix(p);
  const ColorMatrixD b = mul(exp_matrix(p_half), exp_matrix(p_half));
  EXPECT_LT(std::sqrt(norm2(a - b)), 1e-12);
}

TEST(Su3, ReunitarizeRecoversGroupElement) {
  CounterRng rng(110, 0);
  ColorMatrixD u = random_su3<double>(rng);
  ColorMatrixD perturbed = u;
  perturbed.m[1][2] += Cplxd(1e-3, -2e-3);
  reunitarize(perturbed);
  EXPECT_LT(unitarity_error(perturbed), 1e-14);
  EXPECT_NEAR(det(perturbed).re, 1.0, 1e-13);
}

TEST(Su3, NearUnitRandomIsCloseToIdentity) {
  CounterRng rng(111, 0);
  const ColorMatrixD u = random_su3_near_unit<double>(rng, 0.01);
  EXPECT_LT(std::sqrt(norm2(u - unit_matrix<double>())), 0.2);
  EXPECT_LT(unitarity_error(u), 1e-12);
}

TEST(Su3, RandomAlgebraNormalization) {
  // <|p|_F^2> = sum_a <xi_a^2> tr(T_a T_a)... with tr(T_a T_b) =
  // delta_ab/2 the expected Frobenius norm^2 per draw is 8 * 1/2 = 4.
  CounterRng rng(112, 0);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += norm2(random_algebra<double>(rng));
  EXPECT_NEAR(acc / n, 4.0, 0.1);
}

// ---------------------------------------------------------------------------
// Spinors
// ---------------------------------------------------------------------------

TEST(Spinor, NormAndDotConsistency) {
  CounterRng rng(200, 0);
  const WilsonSpinorD a = random_spinor(rng);
  EXPECT_NEAR(dot(a, a).re, norm2(a), 1e-12);
  EXPECT_NEAR(dot(a, a).im, 0.0, 1e-13);
}

TEST(Spinor, DotSesquilinear) {
  CounterRng rng(201, 0);
  const WilsonSpinorD a = random_spinor(rng);
  const WilsonSpinorD b = random_spinor(rng);
  const Cplxd ab = dot(a, b);
  const Cplxd ba = dot(b, a);
  EXPECT_NEAR(ab.re, ba.re, 1e-12);
  EXPECT_NEAR(ab.im, -ba.im, 1e-12);
}

TEST(Spinor, ColorMatrixActsPerSpin) {
  CounterRng rng(202, 0);
  const ColorMatrixD u = random_su3<double>(rng);
  const WilsonSpinorD psi = random_spinor(rng);
  const WilsonSpinorD upsi = mul(u, psi);
  for (int s = 0; s < Ns; ++s) {
    const ColorVectorD want = mul(u, psi.s[s]);
    EXPECT_LT(norm2(upsi.s[s] - want), 1e-26);
  }
  // Unitarity at the spinor level.
  EXPECT_NEAR(norm2(upsi), norm2(psi), 1e-12);
}

TEST(Spinor, PrecisionRoundTrip) {
  CounterRng rng(203, 0);
  const WilsonSpinorD a = random_spinor(rng);
  const WilsonSpinorF f = convert<float>(a);
  const WilsonSpinorD back = convert<double>(f);
  EXPECT_LT(norm2(back - a) / norm2(a), 1e-13);  // float eps^2 level
}

// ---------------------------------------------------------------------------
// Gamma algebra
// ---------------------------------------------------------------------------

SpinMatrix anticommutator(const SpinMatrix& a, const SpinMatrix& b) {
  return add(mul(a, b), mul(b, a));
}

TEST(Gamma, CliffordAlgebra) {
  // {gamma_mu, gamma_nu} = 2 delta_mu_nu.
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      const SpinMatrix ac =
          anticommutator(gamma_matrix(mu), gamma_matrix(nu));
      const SpinMatrix want =
          scale(Cplxd(mu == nu ? 2.0 : 0.0), gamma_matrix(5));
      EXPECT_LT(spin_distance(ac, want), 1e-14)
          << "mu=" << mu << " nu=" << nu;
    }
}

TEST(Gamma, Hermiticity) {
  for (int mu = 0; mu < 5; ++mu) {
    const SpinMatrix g = gamma_matrix(mu);
    EXPECT_LT(spin_distance(g, adjoint(g)), 1e-14) << "mu=" << mu;
  }
}

TEST(Gamma, Gamma5IsProductOfGammas) {
  const SpinMatrix prod = mul(mul(gamma_matrix(0), gamma_matrix(1)),
                              mul(gamma_matrix(2), gamma_matrix(3)));
  EXPECT_LT(spin_distance(prod, gamma_matrix(4)), 1e-14);
}

TEST(Gamma, Gamma5AnticommutesWithGammaMu) {
  const SpinMatrix g5 = gamma_matrix(4);
  for (int mu = 0; mu < 4; ++mu) {
    const SpinMatrix ac = anticommutator(g5, gamma_matrix(mu));
    EXPECT_LT(spin_distance(ac, scale(Cplxd(0.0), g5)), 1e-14);
  }
}

TEST(Gamma, TableMatchesDenseMatrix) {
  CounterRng rng(300, 0);
  const WilsonSpinorD psi = random_spinor(rng);
  for (int mu = 0; mu < 5; ++mu) {
    const WilsonSpinorD table = apply_gamma(mu, psi);
    const SpinMatrix g = gamma_matrix(mu);
    WilsonSpinorD dense{};
    for (int r = 0; r < Ns; ++r)
      for (int k = 0; k < Ns; ++k)
        for (int c = 0; c < Nc; ++c)
          fma_acc(dense.s[r].c[c], g.m[r][k], psi.s[k].c[c]);
    EXPECT_LT(norm2(table - dense), 1e-26) << "mu=" << mu;
  }
}

TEST(Gamma, ApplyGamma5Shortcut) {
  CounterRng rng(301, 0);
  const WilsonSpinorD psi = random_spinor(rng);
  EXPECT_LT(norm2(apply_gamma5(psi) - apply_gamma(4, psi)), 1e-28);
}

class GammaProjection : public ::testing::TestWithParam<int> {};

TEST_P(GammaProjection, ProjectReconstructMatchesDense) {
  // For each direction and sign, project+reconstruct must equal
  // (1 + sign*gamma_mu) psi (with identity color transport).
  const int mu = GetParam();
  CounterRng rng(302, static_cast<std::uint64_t>(mu));
  const WilsonSpinorD psi = random_spinor(rng);

  auto check = [&](auto tag_minus, auto tag_plus) {
    (void)tag_minus;
    (void)tag_plus;
  };
  (void)check;

  auto dense_proj = [&](int sign) {
    WilsonSpinorD out = psi;
    const WilsonSpinorD g = apply_gamma(mu, psi);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        out.s[s].c[c] += Cplxd(double(sign)) * g.s[s].c[c];
    return out;
  };

  WilsonSpinorD got_minus{};
  WilsonSpinorD got_plus{};
  switch (mu) {
    case 0: {
      accum_reconstruct<0, -1>(got_minus, project<0, -1>(psi));
      accum_reconstruct<0, +1>(got_plus, project<0, +1>(psi));
      break;
    }
    case 1: {
      accum_reconstruct<1, -1>(got_minus, project<1, -1>(psi));
      accum_reconstruct<1, +1>(got_plus, project<1, +1>(psi));
      break;
    }
    case 2: {
      accum_reconstruct<2, -1>(got_minus, project<2, -1>(psi));
      accum_reconstruct<2, +1>(got_plus, project<2, +1>(psi));
      break;
    }
    case 3: {
      accum_reconstruct<3, -1>(got_minus, project<3, -1>(psi));
      accum_reconstruct<3, +1>(got_plus, project<3, +1>(psi));
      break;
    }
    default:
      FAIL();
  }
  EXPECT_LT(norm2(got_minus - dense_proj(-1)), 1e-24);
  EXPECT_LT(norm2(got_plus - dense_proj(+1)), 1e-24);
}

INSTANTIATE_TEST_SUITE_P(AllDirections, GammaProjection,
                         ::testing::Range(0, 4));

TEST(Gamma, SigmaBlockDiagonalInChiralBasis) {
  // sigma_mu_nu must vanish between the two chirality blocks
  // (spins {0,1} vs {2,3}) — the clover term relies on this.
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = mu + 1; nu < 4; ++nu) {
      const SpinMatrix s = sigma_munu(mu, nu);
      for (int r = 0; r < 2; ++r)
        for (int c = 2; c < 4; ++c) {
          EXPECT_LT(norm2(s.m[r][c]), 1e-28);
          EXPECT_LT(norm2(s.m[c][r]), 1e-28);
        }
    }
}

TEST(Gamma, SigmaHermitian) {
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = mu + 1; nu < 4; ++nu) {
      const SpinMatrix s = sigma_munu(mu, nu);
      EXPECT_LT(spin_distance(s, adjoint(s)), 1e-14);
    }
}

TEST(Gamma, SigmaAntisymmetric) {
  for (int mu = 0; mu < 4; ++mu)
    for (int nu = 0; nu < 4; ++nu) {
      if (mu == nu) continue;
      const SpinMatrix a = sigma_munu(mu, nu);
      const SpinMatrix b = scale(Cplxd(-1.0), sigma_munu(nu, mu));
      EXPECT_LT(spin_distance(a, b), 1e-14);
    }
}

// ---------------------------------------------------------------------------
// Small dense matrices
// ---------------------------------------------------------------------------

TEST(SmallMat, InverseOfIdentity) {
  const auto id = SmallMat<double, 6>::identity();
  const auto inv = inverse(id);
  EXPECT_LT(frobenius_norm(mul(inv, id)) - std::sqrt(6.0), 1e-12);
}

TEST(SmallMat, InverseRandom) {
  CounterRng rng(400, 0);
  SmallMat<double, 6> a{};
  for (int r = 0; r < 6; ++r)
    for (int c = 0; c < 6; ++c)
      a.m[r][c] = Cplxd(rng.gaussian(), rng.gaussian());
  // Diagonal boost to avoid accidental near-singularity.
  for (int r = 0; r < 6; ++r) a.m[r][r] += Cplxd(5.0);
  const auto inv = inverse(a);
  const auto prod = mul(a, inv);
  SmallMat<double, 6> err = prod;
  for (int r = 0; r < 6; ++r) err.m[r][r] -= Cplxd(1.0);
  EXPECT_LT(frobenius_norm(err), 1e-12);
}

TEST(SmallMat, SingularThrows) {
  SmallMat<double, 3> a{};  // all zeros
  EXPECT_THROW(inverse(a), Error);
}

TEST(SmallMat, MatVec) {
  SmallMat<double, 2> a{};
  a.m[0][0] = Cplxd(0.0, 1.0);  // i
  a.m[1][1] = Cplxd(2.0);
  SmallVec<double, 2> v{};
  v.v[0] = Cplxd(1.0);
  v.v[1] = Cplxd(0.0, 1.0);
  const auto w = mul(a, v);
  EXPECT_DOUBLE_EQ(w.v[0].re, 0.0);
  EXPECT_DOUBLE_EQ(w.v[0].im, 1.0);
  EXPECT_DOUBLE_EQ(w.v[1].im, 2.0);
}

}  // namespace
}  // namespace lqcd
