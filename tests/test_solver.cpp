// Tests for the Krylov solvers: CG, BiCGStab, GCR, mixed-precision defect
// correction and the SAP preconditioner, plus the even-odd solve pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/clover.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/gcr.hpp"
#include "solver/mixed_cg.hpp"
#include "solver/sap.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

const GaugeFieldD& shared_gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(900));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 901});
    for (int i = 0; i < 6; ++i) hb.sweep();
    return v;
  }();
  return u;
}

using CSpan = std::span<const WilsonSpinorD>;
CSpan cspan(const FermionFieldD& f) { return f.span(); }

double residual(const LinearOperator<double>& op, CSpan x, CSpan b) {
  FermionFieldD ax(geo4());
  std::vector<WilsonSpinorD> buf(x.size());
  op.apply(std::span<WilsonSpinorD>(buf), x);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += norm2(buf[i] - b[i]);
    ref += norm2(b[i]);
  }
  return std::sqrt(err / ref);
}

TEST(Cg, SolvesNormalEquations) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  NormalOperator<double> mdm(m);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1000);
  SolverParams p{.tol = 1e-10, .max_iterations = 2000};
  const SolverResult r = cg_solve<double>(mdm, x.span(), cspan(b), p);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-9);
  EXPECT_GT(r.iterations, 0);
  EXPECT_LT(residual(mdm, cspan(x), cspan(b)), 1e-9);
}

TEST(Cg, RejectsNonHermitianOperator) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  FermionFieldD b(geo4()), x(geo4());
  EXPECT_THROW(cg_solve<double>(m, x.span(), cspan(b), {}), Error);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  NormalOperator<double> mdm(m);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(x.span(), 1001);  // dirty initial guess
  const SolverResult r = cg_solve<double>(mdm, x.span(), cspan(b), {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(blas::norm2(cspan(x)), 0.0);
}

TEST(Cg, HonorsIterationLimit) {
  WilsonOperator<double> m(shared_gauge(), 0.124);
  NormalOperator<double> mdm(m);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1002);
  SolverParams p{.tol = 1e-14, .max_iterations = 3};
  const SolverResult r = cg_solve<double>(mdm, x.span(), cspan(b), p);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(Cg, ReportsFlopsAndTime) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  NormalOperator<double> mdm(m);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1003);
  const SolverResult r = cg_solve<double>(mdm, x.span(), cspan(b),
                                          {.tol = 1e-8});
  EXPECT_GT(r.flops, 0.0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gflops_per_second(), 0.0);
}

TEST(BiCgStab, SolvesWilsonSystem) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1004);
  SolverParams p{.tol = 1e-10, .max_iterations = 2000};
  const SolverResult r = bicgstab_solve<double>(m, x.span(), cspan(b), p);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual(m, cspan(x), cspan(b)), 1e-9);
}

TEST(BiCgStab, FewerIterationsThanCgOnM) {
  // BiCGStab works on M directly; CG needs M^†M whose condition number is
  // squared — so CG on the normal equations takes more operator applies.
  WilsonOperator<double> m(shared_gauge(), 0.124);
  NormalOperator<double> mdm(m);
  FermionFieldD b(geo4()), x1(geo4()), x2(geo4());
  fill_random(b.span(), 1005);
  SolverParams p{.tol = 1e-8, .max_iterations = 4000};
  const SolverResult rb = bicgstab_solve<double>(m, x1.span(), cspan(b), p);
  const SolverResult rc = cg_solve<double>(mdm, x2.span(), cspan(b), p);
  EXPECT_TRUE(rb.converged);
  EXPECT_TRUE(rc.converged);
  // Operator applies: BiCGStab 2/iter on M, CG 1/iter on M^†M (2 M each).
  EXPECT_LT(rb.iterations, rc.iterations * 2);
}

TEST(BiCgStab, ZeroRhs) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  FermionFieldD b(geo4()), x(geo4());
  const SolverResult r = bicgstab_solve<double>(m, x.span(), cspan(b), {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(blas::norm2(cspan(x)), 0.0);
}

TEST(Gcr, SolvesWithoutPreconditioner) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1006);
  GcrParams p;
  p.base.tol = 1e-9;
  p.base.max_iterations = 3000;
  p.restart_length = 16;
  const SolverResult r = gcr_solve<double>(m, x.span(), cspan(b), p);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(residual(m, cspan(x), cspan(b)), 1e-8);
}

TEST(Gcr, SapPreconditionedConvergesFaster) {
  WilsonOperator<double> m(shared_gauge(), 0.124);
  FermionFieldD b(geo4()), x1(geo4()), x2(geo4());
  fill_random(b.span(), 1007);
  GcrParams p;
  p.base.tol = 1e-8;
  p.base.max_iterations = 3000;
  const SolverResult plain = gcr_solve<double>(m, x1.span(), cspan(b), p);

  SapParams sp;
  sp.block = {2, 2, 2, 2};
  sp.cycles = 3;
  sp.block_mr_iterations = 4;
  SapPreconditioner<double> sap(m, sp);
  const SolverResult pre = gcr_solve<double>(m, x2.span(), cspan(b), p,
                                             &sap);
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  EXPECT_LT(residual(m, cspan(x2), cspan(b)), 1e-7);
}

TEST(Sap, BlockGeometryValidation) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  SapParams sp;
  sp.block = {3, 2, 2, 2};  // 3 does not divide 4
  EXPECT_THROW(SapPreconditioner<double>(m, sp), Error);
}

TEST(Sap, BlockCountAndApplyShape) {
  WilsonOperator<double> m(shared_gauge(), 0.12);
  SapParams sp;
  sp.block = {2, 2, 2, 2};
  SapPreconditioner<double> sap(m, sp);
  EXPECT_EQ(sap.num_blocks(), 16u);
  FermionFieldD in(geo4()), out(geo4());
  fill_random(in.span(), 1008);
  sap.apply(out.span(), cspan(in));
  // One SAP application must reduce the residual of M z = in vs z = 0.
  FermionFieldD mz(geo4());
  m.apply(mz.span(), cspan(out));
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(mz[s] - in[s]);
    ref += norm2(in[s]);
  }
  EXPECT_LT(err / ref, 1.0);
}

TEST(MixedCg, MatchesDoubleCg) {
  const GaugeFieldD& u = shared_gauge();
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  WilsonOperator<double> md(u, 0.12);
  WilsonOperator<float> mf(uf, 0.12);
  NormalOperator<double> nd(md);
  NormalOperator<float> nf(mf);

  FermionFieldD b(geo4()), x_mixed(geo4()), x_double(geo4());
  fill_random(b.span(), 1009);

  MixedCgParams mp;
  mp.outer.tol = 1e-10;
  const SolverResult rm = mixed_cg_solve(nd, nf, x_mixed.span(), cspan(b),
                                         mp);
  EXPECT_TRUE(rm.converged);
  EXPECT_GT(rm.outer_cycles, 0);
  EXPECT_GT(rm.inner_iterations, 0);

  SolverParams p{.tol = 1e-10, .max_iterations = 4000};
  const SolverResult rd = cg_solve<double>(nd, x_double.span(), cspan(b), p);
  EXPECT_TRUE(rd.converged);

  double diff = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    diff += norm2(x_mixed[s] - x_double[s]);
    ref += norm2(x_double[s]);
  }
  EXPECT_LT(std::sqrt(diff / ref), 1e-7);
}

TEST(MixedCg, AchievesBeyondSinglePrecision) {
  // The whole point of defect correction: final accuracy far below float
  // epsilon although all heavy lifting ran in float.
  const GaugeFieldD& u = shared_gauge();
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  WilsonOperator<double> md(u, 0.12);
  WilsonOperator<float> mf(uf, 0.12);
  NormalOperator<double> nd(md);
  NormalOperator<float> nf(mf);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1010);
  MixedCgParams mp;
  mp.outer.tol = 1e-12;
  const SolverResult r = mixed_cg_solve(nd, nf, x.span(), cspan(b), mp);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-12);
}

TEST(MixedCg, UnconvergedResidualMatchesReturnedIterate) {
  // Regression: on cycle exhaustion the reported residual was the value
  // measured at the TOP of the last cycle — stale by one accumulated
  // correction. The reported value must describe the x actually returned.
  const GaugeFieldD& u = shared_gauge();
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  WilsonOperator<double> md(u, 0.12);
  WilsonOperator<float> mf(uf, 0.12);
  NormalOperator<double> nd(md);
  NormalOperator<float> nf(mf);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1011);

  MixedCgParams mp;
  mp.outer.tol = 1e-13;      // far beyond what one cycle reaches...
  mp.max_outer_cycles = 1;   // ...and only one cycle allowed
  mp.inner_reduction = 1e-2;
  const SolverResult r = mixed_cg_solve(nd, nf, x.span(), cspan(b), mp);
  ASSERT_FALSE(r.converged);
  const double true_rel = residual(nd, cspan(x), cspan(b));
  ASSERT_GT(true_rel, 0.0);
  // Stale value would be 1.0 (residual before the only correction);
  // the fixed value agrees with the returned iterate.
  EXPECT_NEAR(r.relative_residual / true_rel, 1.0, 1e-6);
  EXPECT_LT(r.relative_residual, 0.9);
}

TEST(EvenOdd, SchurSolveMatchesFullSolve) {
  const GaugeFieldD& u = shared_gauge();
  const double kappa = 0.12;
  WilsonOperator<double> m(u, kappa);
  SchurWilsonOperator<double> shat(u, kappa);
  NormalOperator<double> nhat(shat);

  FermionFieldD b(geo4()), x_full(geo4());
  fill_random(b.span(), 1011);

  // Full-lattice reference solve via BiCGStab.
  SolverParams p{.tol = 1e-11, .max_iterations = 4000};
  const SolverResult rf = bicgstab_solve<double>(m, x_full.span(), cspan(b),
                                                 p);
  ASSERT_TRUE(rf.converged);

  // Even-odd pipeline: prepare rhs, CG on normal Schur eqs, reconstruct.
  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
  shat.prepare_rhs(std::span<WilsonSpinorD>(bhat.data(), hv), cspan(b));
  // Normal equations: solve Mhat^† Mhat xo = Mhat^† bhat.
  apply_dagger_g5<double>(shat, std::span<WilsonSpinorD>(bhat2.data(), hv),
                          CSpan(bhat.data(), hv),
                          std::span<WilsonSpinorD>(tmp.data(), hv));
  const SolverResult rs = cg_solve<double>(
      nhat, std::span<WilsonSpinorD>(xo.data(), hv), CSpan(bhat2.data(), hv),
      p);
  ASSERT_TRUE(rs.converged);

  FermionFieldD x_eo(geo4());
  shat.reconstruct(x_eo.span(), CSpan(xo.data(), hv), cspan(b));

  EXPECT_LT(residual(m, cspan(x_eo), cspan(b)), 1e-8);
  double diff = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    diff += norm2(x_eo[s] - x_full[s]);
    ref += norm2(x_full[s]);
  }
  EXPECT_LT(std::sqrt(diff / ref), 1e-7);
}

TEST(EvenOdd, SchurCgBeatsFullCgInOperatorApplies) {
  // The headline ablation: even-odd preconditioning cuts both the vector
  // size and the iteration count.
  const GaugeFieldD& u = shared_gauge();
  const double kappa = 0.123;
  WilsonOperator<double> m(u, kappa);
  NormalOperator<double> nm(m);
  SchurWilsonOperator<double> shat(u, kappa);
  NormalOperator<double> nhat(shat);

  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 1012);
  SolverParams p{.tol = 1e-9, .max_iterations = 6000};
  const SolverResult rf = cg_solve<double>(nm, x.span(), cspan(b), p);

  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
  shat.prepare_rhs(std::span<WilsonSpinorD>(bhat.data(), hv), cspan(b));
  apply_dagger_g5<double>(shat, std::span<WilsonSpinorD>(bhat2.data(), hv),
                          CSpan(bhat.data(), hv),
                          std::span<WilsonSpinorD>(tmp.data(), hv));
  const SolverResult rs = cg_solve<double>(
      nhat, std::span<WilsonSpinorD>(xo.data(), hv), CSpan(bhat2.data(), hv),
      p);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_LT(rs.iterations, rf.iterations);
}

TEST(EvenOdd, CloverSchurSolveSatisfiesFullCloverSystem) {
  const GaugeFieldD& u = shared_gauge();
  CloverParams cp{.kappa = 0.12, .csw = 1.0};
  CloverWilsonOperator<double> m(u, u, cp);
  SchurCloverOperator<double> shat(u, u, cp);
  NormalOperator<double> nhat(shat);

  FermionFieldD b(geo4());
  fill_random(b.span(), 1013);

  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
  shat.prepare_rhs(std::span<WilsonSpinorD>(bhat.data(), hv), cspan(b));
  apply_dagger_g5<double>(shat, std::span<WilsonSpinorD>(bhat2.data(), hv),
                          CSpan(bhat.data(), hv),
                          std::span<WilsonSpinorD>(tmp.data(), hv));
  SolverParams p{.tol = 1e-11, .max_iterations = 6000};
  const SolverResult rs = cg_solve<double>(
      nhat, std::span<WilsonSpinorD>(xo.data(), hv), CSpan(bhat2.data(), hv),
      p);
  ASSERT_TRUE(rs.converged);

  FermionFieldD x(geo4());
  shat.reconstruct(x.span(), CSpan(xo.data(), hv), cspan(b));
  EXPECT_LT(residual(m, cspan(x), cspan(b)), 1e-8);
}

TEST(CriticalSlowingDown, IterationsGrowTowardKappaC) {
  // The conditioning of M^†M degrades as kappa -> kappa_c: iteration
  // counts must increase monotonically over a kappa sweep.
  const GaugeFieldD& u = shared_gauge();
  FermionFieldD b(geo4());
  fill_random(b.span(), 1014);
  SolverParams p{.tol = 1e-8, .max_iterations = 8000};
  int prev_iters = 0;
  for (const double kappa : {0.100, 0.115, 0.125}) {
    SchurWilsonOperator<double> shat(u, kappa);
    NormalOperator<double> nhat(shat);
    const auto hv = static_cast<std::size_t>(geo4().half_volume());
    aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
    shat.prepare_rhs(std::span<WilsonSpinorD>(bhat.data(), hv), cspan(b));
    apply_dagger_g5<double>(shat,
                            std::span<WilsonSpinorD>(bhat2.data(), hv),
                            CSpan(bhat.data(), hv),
                            std::span<WilsonSpinorD>(tmp.data(), hv));
    const SolverResult r = cg_solve<double>(
        nhat, std::span<WilsonSpinorD>(xo.data(), hv),
        CSpan(bhat2.data(), hv), p);
    ASSERT_TRUE(r.converged) << "kappa=" << kappa;
    EXPECT_GT(r.iterations, prev_iters) << "kappa=" << kappa;
    prev_iters = r.iterations;
  }
}

}  // namespace
}  // namespace lqcd
