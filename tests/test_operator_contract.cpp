// Parameterized "operator contract" suite: structural invariants every
// Dirac operator must satisfy, swept over lattice shapes and hopping
// parameters. Complements the targeted per-module tests with broad
// property coverage.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dirac/clover.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"

namespace lqcd {
namespace {

using ShapeKappa = std::tuple<Coord, double>;

class OperatorContract : public ::testing::TestWithParam<ShapeKappa> {
 protected:
  void SetUp() override {
    const Coord dims = std::get<0>(GetParam());
    geo_ = std::make_unique<LatticeGeometry>(dims);
    u_ = std::make_unique<GaugeFieldD>(*geo_);
    u_->set_random(SiteRngFactory(hash_dims(dims)));
    Heatbath hb(*u_, {.beta = 5.9, .or_per_hb = 1,
                      .seed = hash_dims(dims) + 1});
    for (int i = 0; i < 3; ++i) hb.sweep();
    kappa_ = std::get<1>(GetParam());
  }

  static std::uint64_t hash_dims(const Coord& d) {
    return static_cast<std::uint64_t>(d[0] + 13 * d[1] + 101 * d[2] +
                                      997 * d[3]);
  }

  FermionFieldD random_field(std::uint64_t seed) const {
    FermionFieldD f(*geo_);
    SiteRngFactory rngs(seed);
    for (std::int64_t s = 0; s < geo_->volume(); ++s) {
      CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          f[s].s[sp].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
    }
    return f;
  }

  std::unique_ptr<LatticeGeometry> geo_;
  std::unique_ptr<GaugeFieldD> u_;
  double kappa_ = 0.0;
};

TEST_P(OperatorContract, Gamma5Hermiticity) {
  WilsonOperator<double> m(*u_, kappa_);
  FermionFieldD phi = random_field(1), psi = random_field(2);
  FermionFieldD mpsi(*geo_), mdphi(*geo_), tmp(*geo_);
  m.apply(mpsi.span(), psi.span());
  m.apply_dagger(mdphi.span(), phi.span(), tmp.span());
  const Cplxd a = blas::dot(phi.span(), mpsi.span());
  const Cplxd b = blas::dot(mdphi.span(), psi.span());
  EXPECT_NEAR(a.re, b.re, 1e-9 * std::abs(a.re) + 1e-9);
  EXPECT_NEAR(a.im, b.im, 1e-9 * std::abs(a.re) + 1e-9);
}

TEST_P(OperatorContract, NormalOperatorPositive) {
  WilsonOperator<double> m(*u_, kappa_);
  NormalOperator<double> a(m);
  FermionFieldD x = random_field(3);
  FermionFieldD ax(*geo_);
  a.apply(ax.span(), x.span());
  EXPECT_GT(blas::re_dot(x.span(), ax.span()), 0.0);
}

TEST_P(OperatorContract, SchurSolveReconstructsFullSolution) {
  WilsonOperator<double> m(*u_, kappa_);
  SchurWilsonOperator<double> shat(*u_, kappa_);
  NormalOperator<double> nhat(shat);
  FermionFieldD b = random_field(4);
  const auto hv = static_cast<std::size_t>(geo_->half_volume());
  aligned_vector<WilsonSpinorD> bhat(hv), bhat2(hv), xo(hv), tmp(hv);
  shat.prepare_rhs({bhat.data(), hv}, b.span());
  apply_dagger_g5<double>(shat, {bhat2.data(), hv}, {bhat.data(), hv},
                          {tmp.data(), hv});
  SolverParams p{.tol = 1e-10, .max_iterations = 10000};
  ASSERT_TRUE(cg_solve<double>(nhat, {xo.data(), hv},
                               std::span<const WilsonSpinorD>(
                                   bhat2.data(), hv),
                               p)
                  .converged);
  FermionFieldD x(*geo_), check(*geo_);
  shat.reconstruct(x.span(), {xo.data(), hv}, b.span());
  m.apply(check.span(), x.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo_->volume(); ++s) {
    err += norm2(check[s] - b[s]);
    ref += norm2(b[s]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-8);
}

TEST_P(OperatorContract, CloverSchurMatchesWilsonAtZeroCsw) {
  SchurWilsonOperator<double> sw(*u_, kappa_);
  SchurCloverOperator<double> sc(*u_, *u_, {.kappa = kappa_, .csw = 0.0});
  const auto hv = static_cast<std::size_t>(geo_->half_volume());
  FermionFieldD full = random_field(5);
  aligned_vector<WilsonSpinorD> x(hv), a(hv), b(hv);
  for (std::size_t i = 0; i < hv; ++i)
    x[i] = full[static_cast<std::int64_t>(i)];
  sw.apply({a.data(), hv},
           std::span<const WilsonSpinorD>(x.data(), hv));
  sc.apply({b.data(), hv},
           std::span<const WilsonSpinorD>(x.data(), hv));
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < hv; ++i) {
    err += norm2(a[i] - b[i]);
    ref += norm2(a[i]);
  }
  EXPECT_LT(err / ref, 1e-22);
}

TEST_P(OperatorContract, DslashNormBounded) {
  // ||D psi|| <= 8 ||psi|| for unitary links (each of 8 hop terms is a
  // projector (norm <= 2) times a unitary transport, summed).
  const GaugeFieldD links = make_fermion_links(*u_,
                                               TimeBoundary::Antiperiodic);
  FermionFieldD in = random_field(6);
  FermionFieldD out(*geo_);
  dslash_full(out.span(),
              std::span<const WilsonSpinorD>(in.span().data(),
                                             in.span().size()),
              links);
  EXPECT_LE(std::sqrt(blas::norm2(out.span())),
            8.0 * std::sqrt(blas::norm2(in.span())) * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndMasses, OperatorContract,
    ::testing::Values(
        ShapeKappa{Coord{4, 4, 4, 4}, 0.100},
        ShapeKappa{Coord{4, 4, 4, 4}, 0.124},
        ShapeKappa{Coord{4, 4, 4, 8}, 0.115},
        ShapeKappa{Coord{6, 4, 4, 6}, 0.120},
        ShapeKappa{Coord{4, 6, 4, 4}, 0.110},
        ShapeKappa{Coord{8, 4, 4, 4}, 0.118}));

}  // namespace
}  // namespace lqcd
