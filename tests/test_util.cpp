// Unit tests for util: RNG, statistics, CRC32, CLI, error macros.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace lqcd {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    LQCD_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(LQCD_REQUIRE(1 + 1 == 2, ""));
  EXPECT_NO_THROW(LQCD_ASSERT(true, ""));
}

TEST(Rng, DeterministicAcrossInstances) {
  CounterRng a(123, 7);
  CounterRng b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentStreamsDiffer) {
  CounterRng a(123, 7);
  CounterRng b(123, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentSeedsDiffer) {
  CounterRng a(1, 0);
  CounterRng b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  CounterRng rng(99, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  CounterRng rng(7, 3);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    s1 += u;
    s2 += u * u;
  }
  EXPECT_NEAR(s1 / n, 0.5, 5e-3);
  EXPECT_NEAR(s2 / n, 1.0 / 3.0, 5e-3);
}

TEST(Rng, GaussianMoments) {
  CounterRng rng(11, 0);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0, s4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    s1 += g;
    s2 += g * g;
    s4 += g * g * g * g;
  }
  EXPECT_NEAR(s1 / n, 0.0, 2e-2);
  EXPECT_NEAR(s2 / n, 1.0, 2e-2);
  EXPECT_NEAR(s4 / n, 3.0, 1e-1);  // kurtosis of the normal
}

TEST(Rng, UniformOpen0NeverZero) {
  CounterRng rng(13, 0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform_open0(), 0.0);
}

TEST(Rng, SiteFactoryReproducible) {
  SiteRngFactory f(42, 0);
  CounterRng a = f.make(1000, 3);
  CounterRng b = f.make(1000, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SiteFactoryEpochsIndependent) {
  SiteRngFactory f0(42, 0);
  SiteRngFactory f1 = f0.next_epoch();
  EXPECT_NE(f0.make(5, 0).next_u64(), f1.make(5, 0).next_u64());
  EXPECT_EQ(f1.epoch(), 1u);
}

TEST(Stats, MeanVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-14);
  EXPECT_NEAR(standard_error(xs), std::sqrt(5.0 / 3.0 / 4.0), 1e-14);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(standard_error(one), 0.0);
}

TEST(Stats, JackknifeMeanMatchesStandardError) {
  CounterRng rng(5, 0);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.gaussian();
  const auto jk = jackknife_mean(xs);
  EXPECT_NEAR(jk.value, mean(xs), 1e-12);
  // For the plain mean, jackknife error == standard error exactly.
  EXPECT_NEAR(jk.error, standard_error(xs), 1e-10);
}

TEST(Stats, JackknifeNonlinearEstimator) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto jk = jackknife(
      xs, [](std::span<const double> v) { return mean(v) * mean(v); });
  EXPECT_NEAR(jk.value, 9.0, 1e-12);
  EXPECT_GT(jk.error, 0.0);
}

TEST(Stats, JackknifeRequiresTwoSamples) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(jackknife_mean(xs), Error);
}

TEST(Stats, AutocorrelationOfIidIsHalf) {
  CounterRng rng(17, 0);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(integrated_autocorrelation(xs), 0.5, 0.15);
}

TEST(Stats, AutocorrelationDetectsCorrelation) {
  // AR(1) with strong correlation has tau >> 0.5.
  CounterRng rng(19, 0);
  std::vector<double> xs(5000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.9 * prev + rng.gaussian();
    x = prev;
  }
  EXPECT_GT(integrated_autocorrelation(xs), 3.0);
}

TEST(Stats, JackknifeCorrelator) {
  std::vector<std::vector<double>> data = {
      {1.0, 2.0}, {1.2, 2.2}, {0.8, 1.8}};
  const auto est = jackknife_correlator(data);
  ASSERT_EQ(est.value.size(), 2u);
  EXPECT_NEAR(est.value[0], 1.0, 1e-12);
  EXPECT_NEAR(est.value[1], 2.0, 1e-12);
  EXPECT_GT(est.error[0], 0.0);
}

TEST(Stats, JackknifeCorrelatorRejectsRagged) {
  std::vector<std::vector<double>> data = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(jackknife_correlator(data), Error);
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  const char s[] = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char s[] = "hello, lattice world";
  const std::uint32_t whole = crc32(s, sizeof(s) - 1);
  std::uint32_t inc = crc32(s, 5);
  inc = crc32(s + 5, sizeof(s) - 1 - 5, inc);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32, DetectsBitFlip) {
  std::vector<unsigned char> buf(256);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>(i);
  const std::uint32_t a = crc32(buf.data(), buf.size());
  buf[100] ^= 1;
  EXPECT_NE(crc32(buf.data(), buf.size()), a);
}

TEST(Cli, ParsesTypedOptions) {
  const char* argv[] = {"prog", "--n=8", "--beta", "5.5", "--name=run1",
                        "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 5.5);
  EXPECT_EQ(cli.get_string("name", ""), "run1");
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_FALSE(cli.get_flag("missing"));
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.finish(), Error);
}

TEST(Cli, RejectsNonOptionArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), Error);
}

TEST(Cli, SubcommandParsesVerbThenOptions) {
  const char* argv[] = {"tool", "run", "--n=3", "--flag"};
  Cli cli(4, argv, {"run", "status"});
  EXPECT_EQ(cli.command(), "run");
  EXPECT_EQ(cli.get_int("n", 0), 3);
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, SubcommandRejectsUnknownVerb) {
  const char* argv[] = {"tool", "frobnicate"};
  EXPECT_THROW(Cli(2, argv, {"run", "status"}), Error);
}

TEST(Cli, SubcommandRequiresVerb) {
  const char* argv[] = {"tool", "--n=3"};
  EXPECT_THROW(Cli(2, argv, {"run", "status"}), Error);
}

TEST(Cli, FlatParsingUnaffectedBySubcommandSupport) {
  // The flat constructor must never eat argv[1] as a verb.
  const char* argv[] = {"prog", "--run=1"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.command().empty());
  EXPECT_EQ(cli.get_int("run", 0), 1);
}

TEST(AccumTimer, CountsOnlyMatchedIntervals) {
  AccumTimer t;
  // Regression: a stray end() (no begin()) used to bump intervals(),
  // silently deflating total/intervals averages.
  t.end();
  EXPECT_EQ(t.intervals(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.begin();
  t.end();
  EXPECT_EQ(t.intervals(), 1);
  t.end();  // double end: still one interval
  EXPECT_EQ(t.intervals(), 1);
  t.begin();
  t.end();
  EXPECT_EQ(t.intervals(), 2);
}

TEST(AccumTimer, ResetClearsState) {
  AccumTimer t;
  t.begin();
  t.end();
  t.reset();
  EXPECT_EQ(t.intervals(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.end();  // reset also closes any open interval
  EXPECT_EQ(t.intervals(), 0);
}

TEST(JsonWriter, DeterministicDocument) {
  const auto build = [] {
    json::Writer w;
    w.begin_object()
        .field("schema", "lqcd.test/1")
        .field("count", 3)
        .field("ratio", 0.1)
        .key("dims")
        .begin_array()
        .value(4)
        .value(4)
        .end_array()
        .end_object();
    return w.str();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());  // byte-identical across builds
  // Keys come out in call order, scalar arrays stay on one line.
  EXPECT_NE(a.find("\"schema\": \"lqcd.test/1\""), std::string::npos);
  EXPECT_NE(a.find("[4, 4]"), std::string::npos);
}

TEST(JsonWriter, EscapesStringsAndRoundTripsDoubles) {
  json::Writer w;
  w.begin_object()
      .field("s", "a\"b\\c\nd")
      .field("x", 0.30000000000000004)
      .end_object();
  const json::Value v = json::Value::parse(w.str());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(v.at("x").as_double(), 0.30000000000000004);  // %.17g exact
}

TEST(JsonWriter, RawSplicesFragment) {
  json::Writer inner;
  inner.begin_object().field("a", 1).end_object();
  json::Writer w;
  w.begin_object().key("nested").raw(inner.str()).end_object();
  const json::Value v = json::Value::parse(w.str());
  EXPECT_EQ(v.at("nested").at("a").as_int(), 1);
}

TEST(JsonWriter, ThrowsOnUnbalancedDocument) {
  json::Writer w;
  w.begin_object();
  EXPECT_THROW(w.str(), Error);
}

TEST(JsonValue, ParsesTypedDocument) {
  const json::Value v = json::Value::parse(
      R"({"n": 7, "x": 2.5, "on": true, "none": null,
          "arr": [1, 2, 3], "obj": {"k": "v"}})");
  EXPECT_EQ(v.at("n").as_int(), 7);
  EXPECT_TRUE(v.at("n").is_integer());
  EXPECT_DOUBLE_EQ(v.at("x").as_double(), 2.5);
  EXPECT_FALSE(v.at("x").is_integer());
  EXPECT_TRUE(v.at("on").as_bool());
  EXPECT_TRUE(v.at("none").is_null());
  ASSERT_EQ(v.at("arr").size(), 3u);
  EXPECT_EQ(v.at("arr")[2].as_int(), 3);
  EXPECT_EQ(v.at("obj").at("k").as_string(), "v");
  EXPECT_EQ(v.get_or("missing", 42), 42);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, KeepsObjectKeysInFileOrder) {
  const json::Value v = json::Value::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& items = v.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, "z");
  EXPECT_EQ(items[1].first, "a");
  EXPECT_EQ(items[2].first, "m");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW(json::Value::parse("{"), Error);
  EXPECT_THROW(json::Value::parse("{\"a\": }"), Error);
  EXPECT_THROW(json::Value::parse("[1, 2,]"), Error);
  EXPECT_THROW(json::Value::parse("{} trailing"), Error);
  EXPECT_THROW(json::Value::parse("nul"), Error);
  // Error messages carry a byte offset for spec debugging.
  try {
    json::Value::parse("[1, 2,]");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonValue, AccessorsEnforceKinds) {
  const json::Value v = json::Value::parse(R"({"s": "text"})");
  EXPECT_THROW((void)v.at("s").as_int(), Error);
  EXPECT_THROW((void)v.at("s").as_bool(), Error);
  EXPECT_THROW((void)v.at("s")[0], Error);
  EXPECT_THROW((void)v.at("missing"), Error);
}

}  // namespace
}  // namespace lqcd
