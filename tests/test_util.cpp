// Unit tests for util: RNG, statistics, CRC32, CLI, error macros.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/cli.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace lqcd {
namespace {

TEST(Error, RequireThrowsWithMessage) {
  try {
    LQCD_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(LQCD_REQUIRE(1 + 1 == 2, ""));
  EXPECT_NO_THROW(LQCD_ASSERT(true, ""));
}

TEST(Rng, DeterministicAcrossInstances) {
  CounterRng a(123, 7);
  CounterRng b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentStreamsDiffer) {
  CounterRng a(123, 7);
  CounterRng b(123, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, DifferentSeedsDiffer) {
  CounterRng a(1, 0);
  CounterRng b(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  CounterRng rng(99, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  CounterRng rng(7, 3);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    s1 += u;
    s2 += u * u;
  }
  EXPECT_NEAR(s1 / n, 0.5, 5e-3);
  EXPECT_NEAR(s2 / n, 1.0 / 3.0, 5e-3);
}

TEST(Rng, GaussianMoments) {
  CounterRng rng(11, 0);
  const int n = 200000;
  double s1 = 0.0, s2 = 0.0, s4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    s1 += g;
    s2 += g * g;
    s4 += g * g * g * g;
  }
  EXPECT_NEAR(s1 / n, 0.0, 2e-2);
  EXPECT_NEAR(s2 / n, 1.0, 2e-2);
  EXPECT_NEAR(s4 / n, 3.0, 1e-1);  // kurtosis of the normal
}

TEST(Rng, UniformOpen0NeverZero) {
  CounterRng rng(13, 0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform_open0(), 0.0);
}

TEST(Rng, SiteFactoryReproducible) {
  SiteRngFactory f(42, 0);
  CounterRng a = f.make(1000, 3);
  CounterRng b = f.make(1000, 3);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SiteFactoryEpochsIndependent) {
  SiteRngFactory f0(42, 0);
  SiteRngFactory f1 = f0.next_epoch();
  EXPECT_NE(f0.make(5, 0).next_u64(), f1.make(5, 0).next_u64());
  EXPECT_EQ(f1.epoch(), 1u);
}

TEST(Stats, MeanVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(variance(xs), 5.0 / 3.0, 1e-14);
  EXPECT_NEAR(standard_error(xs), std::sqrt(5.0 / 3.0 / 4.0), 1e-14);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(standard_error(one), 0.0);
}

TEST(Stats, JackknifeMeanMatchesStandardError) {
  CounterRng rng(5, 0);
  std::vector<double> xs(200);
  for (auto& x : xs) x = rng.gaussian();
  const auto jk = jackknife_mean(xs);
  EXPECT_NEAR(jk.value, mean(xs), 1e-12);
  // For the plain mean, jackknife error == standard error exactly.
  EXPECT_NEAR(jk.error, standard_error(xs), 1e-10);
}

TEST(Stats, JackknifeNonlinearEstimator) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto jk = jackknife(
      xs, [](std::span<const double> v) { return mean(v) * mean(v); });
  EXPECT_NEAR(jk.value, 9.0, 1e-12);
  EXPECT_GT(jk.error, 0.0);
}

TEST(Stats, JackknifeRequiresTwoSamples) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(jackknife_mean(xs), Error);
}

TEST(Stats, AutocorrelationOfIidIsHalf) {
  CounterRng rng(17, 0);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(integrated_autocorrelation(xs), 0.5, 0.15);
}

TEST(Stats, AutocorrelationDetectsCorrelation) {
  // AR(1) with strong correlation has tau >> 0.5.
  CounterRng rng(19, 0);
  std::vector<double> xs(5000);
  double prev = 0.0;
  for (auto& x : xs) {
    prev = 0.9 * prev + rng.gaussian();
    x = prev;
  }
  EXPECT_GT(integrated_autocorrelation(xs), 3.0);
}

TEST(Stats, JackknifeCorrelator) {
  std::vector<std::vector<double>> data = {
      {1.0, 2.0}, {1.2, 2.2}, {0.8, 1.8}};
  const auto est = jackknife_correlator(data);
  ASSERT_EQ(est.value.size(), 2u);
  EXPECT_NEAR(est.value[0], 1.0, 1e-12);
  EXPECT_NEAR(est.value[1], 2.0, 1e-12);
  EXPECT_GT(est.error[0], 0.0);
}

TEST(Stats, JackknifeCorrelatorRejectsRagged) {
  std::vector<std::vector<double>> data = {{1.0, 2.0}, {1.0}};
  EXPECT_THROW(jackknife_correlator(data), Error);
}

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  const char s[] = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const char s[] = "hello, lattice world";
  const std::uint32_t whole = crc32(s, sizeof(s) - 1);
  std::uint32_t inc = crc32(s, 5);
  inc = crc32(s + 5, sizeof(s) - 1 - 5, inc);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32, DetectsBitFlip) {
  std::vector<unsigned char> buf(256);
  for (std::size_t i = 0; i < buf.size(); ++i)
    buf[i] = static_cast<unsigned char>(i);
  const std::uint32_t a = crc32(buf.data(), buf.size());
  buf[100] ^= 1;
  EXPECT_NE(crc32(buf.data(), buf.size()), a);
}

TEST(Cli, ParsesTypedOptions) {
  const char* argv[] = {"prog", "--n=8", "--beta", "5.5", "--name=run1",
                        "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 5.5);
  EXPECT_EQ(cli.get_string("name", ""), "run1");
  EXPECT_TRUE(cli.get_flag("flag"));
  EXPECT_NO_THROW(cli.finish());
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_FALSE(cli.get_flag("missing"));
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.finish(), Error);
}

TEST(Cli, RejectsNonOptionArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), Error);
}

TEST(AccumTimer, CountsOnlyMatchedIntervals) {
  AccumTimer t;
  // Regression: a stray end() (no begin()) used to bump intervals(),
  // silently deflating total/intervals averages.
  t.end();
  EXPECT_EQ(t.intervals(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.begin();
  t.end();
  EXPECT_EQ(t.intervals(), 1);
  t.end();  // double end: still one interval
  EXPECT_EQ(t.intervals(), 1);
  t.begin();
  t.end();
  EXPECT_EQ(t.intervals(), 2);
}

TEST(AccumTimer, ResetClearsState) {
  AccumTimer t;
  t.begin();
  t.end();
  t.reset();
  EXPECT_EQ(t.intervals(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
  t.end();  // reset also closes any open interval
  EXPECT_EQ(t.intervals(), 0);
}

}  // namespace
}  // namespace lqcd
