// Unit tests for the thread pool and parallel loop primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace lqcd {
namespace {

TEST(ThreadPool, SizeAtLeastOne) {
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ReductionMatchesSerialSum) {
  const std::size_t n = 100000;
  const double got =
      parallel_reduce_sum(n, [](std::size_t i) { return double(i); });
  const double want = double(n) * double(n - 1) / 2.0;
  EXPECT_DOUBLE_EQ(got, want);
}

TEST(ThreadPool, ReductionDeterministic) {
  const std::size_t n = 54321;
  auto body = [](std::size_t i) { return 1.0 / (1.0 + double(i)); };
  const double a = parallel_reduce_sum(n, body);
  const double b = parallel_reduce_sum(n, body);
  EXPECT_EQ(a, b);  // bitwise identical: fixed chunk combination order
}

TEST(ThreadPool, ChunksArePartition) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(n, [&](std::size_t lo, std::size_t hi, std::size_t) {
    EXPECT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ExceptionPropagates) {
  EXPECT_THROW(parallel_for(100,
                            [&](std::size_t i) {
                              if (i == 57) throw Error("inner failure");
                            }),
               Error);
}

TEST(ThreadPool, UsableAfterException) {
  try {
    parallel_for(10, [](std::size_t) { throw Error("x"); });
  } catch (const Error&) {
  }
  double s = parallel_reduce_sum(10, [](std::size_t) { return 1.0; });
  EXPECT_DOUBLE_EQ(s, 10.0);
}

TEST(ThreadPool, DedicatedPoolRuns) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> count{0};
  pool.run_chunks(100, [&](std::size_t lo, std::size_t hi, std::size_t) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::size_t calls = 0;
  pool.run_chunks(10, [&](std::size_t lo, std::size_t hi, std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, ManySmallJobs) {
  // Stress the start/finish handshake.
  for (int rep = 0; rep < 200; ++rep) {
    const double s =
        parallel_reduce_sum(7, [](std::size_t) { return 1.0; });
    ASSERT_DOUBLE_EQ(s, 7.0);
  }
}

TEST(ThreadPool, BusyTrueInsideRegionIncludingSerialPath) {
  ThreadPool pool(1);  // serial fast path must count too
  EXPECT_FALSE(pool.busy());
  pool.run_chunks(4, [&](std::size_t, std::size_t, std::size_t) {
    EXPECT_TRUE(pool.busy());
  });
  EXPECT_FALSE(pool.busy());

  ThreadPool pool2(2);
  pool2.run_chunks(8, [&](std::size_t, std::size_t, std::size_t) {
    EXPECT_TRUE(pool2.busy());
  });
  EXPECT_FALSE(pool2.busy());
}

TEST(ThreadPool, BusyClearedAfterBodyThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_chunks(4,
                      [](std::size_t, std::size_t, std::size_t) {
                        throw Error("boom");
                      }),
      Error);
  EXPECT_FALSE(pool.busy());
}

TEST(ThreadPool, SetGlobalThreadsRefusedInsideParallelRegion) {
  // Regression: resizing the global pool from inside one of its own
  // parallel regions used to delete the pool under its running workers.
  // Now it throws and the pool keeps working.
  ThreadPool::set_global_threads(2);
  EXPECT_THROW(
      parallel_for(4, [](std::size_t) { ThreadPool::set_global_threads(4); }),
      Error);
  std::atomic<int> visits{0};
  parallel_for(100, [&](std::size_t) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 100);
}

TEST(ThreadPool, SetGlobalThreadsSwapsCleanly) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  std::atomic<int> visits{0};
  parallel_for(50, [&](std::size_t) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 50);
  ThreadPool::set_global_threads(2);
  EXPECT_EQ(ThreadPool::global().size(), 2u);
}

}  // namespace
}  // namespace lqcd
