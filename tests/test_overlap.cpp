// Tests for the rational inverse square root and overlap fermions:
// scalar accuracy of the approximation, matrix-function identities
// through multishift CG, eps(H)^2 = 1, and the Ginsparg–Wilson relation.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/normal.hpp"
#include "dirac/overlap.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/rational.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(980));
    Heatbath hb(v, {.beta = 6.0, .or_per_hb = 1, .seed = 981});
    for (int i = 0; i < 6; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

// ---------------------------------------------------------------------------
// Scalar rational approximation
// ---------------------------------------------------------------------------

TEST(RationalInvSqrt, ScalarAccuracyNearOne) {
  const RationalApprox r = rational_inverse_sqrt(24);
  for (const double x : {0.5, 0.8, 1.0, 1.5, 2.0}) {
    EXPECT_NEAR(r.evaluate(x) * std::sqrt(x), 1.0, 1e-6) << x;
  }
}

TEST(RationalInvSqrt, AccuracyImprovesWithOrder) {
  auto sup_err = [](int n) {
    const RationalApprox r = rational_inverse_sqrt(n);
    double worst = 0.0;
    for (double x = 0.2; x <= 5.0; x += 0.1)
      worst = std::max(worst,
                       std::abs(r.evaluate(x) * std::sqrt(x) - 1.0));
    return worst;
  };
  EXPECT_LT(sup_err(24), sup_err(12));
  EXPECT_LT(sup_err(12), sup_err(6));
}

TEST(RationalInvSqrt, ScaledCoversWideInterval) {
  const RationalApprox r = rational_inverse_sqrt_scaled(28, 0.05, 30.0);
  for (const double x : {0.05, 0.2, 1.0, 5.0, 30.0}) {
    EXPECT_NEAR(r.evaluate(x) * std::sqrt(x), 1.0, 2e-4) << x;
  }
}

TEST(RationalInvSqrt, Validation) {
  EXPECT_THROW(rational_inverse_sqrt(0), Error);
  EXPECT_THROW(rational_inverse_sqrt_scaled(8, -1.0, 2.0), Error);
  EXPECT_THROW(rational_inverse_sqrt_scaled(8, 3.0, 2.0), Error);
}

// ---------------------------------------------------------------------------
// Matrix functions via multishift
// ---------------------------------------------------------------------------

TEST(MatrixInvSqrt, SquareEqualsInverse) {
  // (A^{-1/2})^2 b == A^{-1} b within the rational accuracy.
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4()), half(geo4()), invs(geo4()), inv(geo4());
  fill_random(b.span(), 982);

  SolverParams p{.tol = 1e-10, .max_iterations = 8000,
                 .check_true_residual = false};
  ASSERT_TRUE(apply_inverse_sqrt<double>(a, half.span(), b.span(), 24,
                                         0.05, 30.0, p)
                  .converged);
  ASSERT_TRUE(apply_inverse_sqrt<double>(a, invs.span(), half.span(), 24,
                                         0.05, 30.0, p)
                  .converged);
  SolverParams pc{.tol = 1e-11, .max_iterations = 8000};
  ASSERT_TRUE(cg_solve<double>(a, inv.span(), b.span(), pc).converged);

  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(invs[s] - inv[s]);
    ref += norm2(inv[s]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-3);
}

TEST(MatrixInvSqrt, CommutesWithOperator) {
  // A * A^{-1/2} b == A^{-1/2} * (A b): functions of A commute with A.
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  FermionFieldD b(geo4()), ab(geo4()), lhs(geo4()), f(geo4()), rhs(geo4());
  fill_random(b.span(), 983);
  SolverParams p{.tol = 1e-10, .max_iterations = 8000,
                 .check_true_residual = false};
  a.apply(ab.span(), b.span());
  ASSERT_TRUE(apply_inverse_sqrt<double>(a, rhs.span(), ab.span(), 24,
                                         0.05, 30.0, p)
                  .converged);
  ASSERT_TRUE(apply_inverse_sqrt<double>(a, f.span(), b.span(), 24, 0.05,
                                         30.0, p)
                  .converged);
  a.apply(lhs.span(), f.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(lhs[s] - rhs[s]);
    ref += norm2(rhs[s]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-4);
}

// ---------------------------------------------------------------------------
// Overlap operator
// ---------------------------------------------------------------------------

OverlapParams overlap_params() {
  OverlapParams p;
  p.m0 = 1.4;
  p.poles = 48;
  p.spectrum_min = 0.01;
  p.spectrum_max = 50.0;
  return p;
}

TEST(Overlap, SignFunctionSquaresToIdentity) {
  OverlapOperator<double> ov(gauge(), overlap_params());
  FermionFieldD x(geo4()), s1(geo4()), s2(geo4());
  fill_random(x.span(), 984);
  ov.apply_sign(s1.span(), x.span());
  ov.apply_sign(s2.span(), s1.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(s2[s] - x[s]);
    ref += norm2(x[s]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-2);
  EXPECT_GT(ov.total_inner_iterations(), 0);
}

TEST(Overlap, SignPreservesNorm) {
  // eps(H) is an involution with unit spectrum: it preserves norms up to
  // the rational accuracy.
  OverlapOperator<double> ov(gauge(), overlap_params());
  FermionFieldD x(geo4()), s(geo4());
  fill_random(x.span(), 985);
  ov.apply_sign(s.span(), x.span());
  EXPECT_NEAR(blas::norm2(s.span()) / blas::norm2(x.span()), 1.0, 1e-2);
}

TEST(Overlap, GinspargWilsonRelation) {
  // gamma5 D + D gamma5 = (1/rho) D gamma5 D, applied to a random vector.
  OverlapOperator<double> ov(gauge(), overlap_params());
  const double rho = ov.rho();
  FermionFieldD x(geo4());
  fill_random(x.span(), 986);

  FermionFieldD dx(geo4()), g5dx(geo4()), dg5x(geo4()), g5x(geo4());
  ov.apply(dx.span(), x.span());
  // gamma5 D x
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    g5dx[s] = apply_gamma5(dx[s]);
  // D gamma5 x
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    g5x[s] = apply_gamma5(x[s]);
  ov.apply(dg5x.span(), g5x.span());
  // rhs = (1/rho) D gamma5 D x
  FermionFieldD dg5dx(geo4());
  ov.apply(dg5dx.span(), g5dx.span());

  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    WilsonSpinorD lhs = g5dx[s];
    lhs += dg5x[s];
    WilsonSpinorD rhs = dg5dx[s];
    rhs *= 1.0 / rho;
    err += norm2(lhs - rhs);
    ref += norm2(rhs);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-2);
}

TEST(Overlap, Gamma5Hermiticity) {
  // D_ov is gamma5-hermitian like every sensible Dirac operator.
  OverlapOperator<double> ov(gauge(), overlap_params());
  FermionFieldD phi(geo4()), psi(geo4()), dpsi(geo4()), g5(geo4()),
      dg5(geo4());
  fill_random(phi.span(), 987);
  fill_random(psi.span(), 988);
  ov.apply(dpsi.span(), psi.span());
  const Cplxd a = blas::dot(phi.span(), dpsi.span());
  // <phi, D psi> =? <g5 D g5 phi, psi>
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    g5[s] = apply_gamma5(phi[s]);
  ov.apply(dg5.span(), g5.span());
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    dg5[s] = apply_gamma5(dg5[s]);
  const Cplxd b = blas::dot(dg5.span(), psi.span());
  EXPECT_NEAR(a.re, b.re, 1e-2 * std::abs(a.re) + 1e-6);
  EXPECT_NEAR(a.im, b.im, 1e-2 * std::abs(a.re) + 1e-6);
}

TEST(Overlap, Validation) {
  OverlapParams p = overlap_params();
  p.m0 = 2.5;
  EXPECT_THROW(OverlapOperator<double>(gauge(), p), Error);
}

}  // namespace
}  // namespace lqcd
