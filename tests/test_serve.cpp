// Tests for the campaign service: spec validation and fingerprinting, the
// CRC-framed journal (replay, torn tails, corruption), deterministic
// sharding, and the headline contract — a killed campaign resumes without
// recomputing any finished task, journaling byte-identical results.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "comm/fault.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/io.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace lqcd::serve {
namespace {

namespace fs = std::filesystem;

/// Per-process scratch root: ctest runs each discovered test as its own
/// process in a shared working directory, so paths must not collide
/// across concurrently running tests. Cleaned up at process exit.
const std::string& scratch_root() {
  static const std::string root =
      "serve_test_scratch." + std::to_string(::getpid());
  return root;
}

class ScratchCleanup : public ::testing::Environment {
 public:
  void TearDown() override {
    std::error_code ec;  // best effort; never fail the suite on cleanup
    fs::remove_all(scratch_root(), ec);
  }
};
const auto* const scratch_cleanup =
    ::testing::AddGlobalTestEnvironment(new ScratchCleanup);

std::string scratch(const std::string& name) {
  const std::string dir = scratch_root() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// One small thermalized 4^4 config on disk, shared by every campaign in
/// this binary (the path is part of the TaskDone payloads, so sharing it
/// keeps cross-campaign payload comparisons meaningful).
const std::string& shared_config() {
  static const std::string path = [] {
    const std::string dir = scratch("gauge");
    const LatticeGeometry geo({4, 4, 4, 4});
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(410));
    Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = 411});
    for (int i = 0; i < 6; ++i) hb.sweep();
    const std::string p = dir + "/config_0.lqcd";
    save_gauge(u, p, 5.9);
    return p;
  }();
  return path;
}

/// 1 config x 2 kappas x 2 sources = 4 cheap tasks over 2 lanes.
CampaignSpec small_spec(const std::string& output) {
  CampaignSpec spec;
  spec.name = "test-campaign";
  spec.configs = {shared_config()};
  spec.kappas = {0.110, 0.115};
  spec.sources = {"point:0,0,0,0", "wall:0"};
  spec.tol = 1e-7;
  spec.block = 4;
  spec.ranks = 2;
  spec.output = output;
  return spec;
}

std::map<int, std::string> done_payloads(const std::string& journal) {
  std::map<int, std::string> out;
  for (const Record& r : replay_journal(journal).records)
    if (r.type == RecordType::TaskDone) {
      const int id = json::Value::parse(r.payload).get_or("task", -1);
      EXPECT_EQ(out.count(id), 0u) << "task " << id << " journaled twice";
      out[id] = r.payload;
    }
  return out;
}

TEST(CampaignSpec, CanonicalRoundTripAndFingerprint) {
  const CampaignSpec spec = small_spec("unused");
  const std::string doc = canonical_json(spec);
  const CampaignSpec back = parse_campaign(json::Value::parse(doc));
  EXPECT_EQ(canonical_json(back), doc);  // parse . print = identity
  EXPECT_EQ(spec_fingerprint(back), spec_fingerprint(spec));

  CampaignSpec other = spec;
  other.kappas[0] = 0.111;  // any field change moves the fingerprint
  EXPECT_NE(spec_fingerprint(other), spec_fingerprint(spec));
}

TEST(CampaignSpec, RejectsMalformedDocuments) {
  const auto parse = [](const std::string& body) {
    return parse_campaign(json::Value::parse(body));
  };
  EXPECT_THROW(parse(R"({"schema": "wrong/1"})"), Error);
  const std::string head = R"("schema": "lqcd.campaign/1")";
  EXPECT_THROW(parse("{" + head + R"(, "configs": []})"), Error);
  EXPECT_THROW(
      parse("{" + head +
            R"(, "configs": ["c"], "kappas": [0.3], "sources": ["wall:0"]})"),
      Error);  // kappa outside (0, 0.25)
  EXPECT_THROW(
      parse("{" + head +
            R"(, "configs": ["c"], "kappas": [0.12], "sources": ["blob:1"]})"),
      Error);  // unknown source kind
  EXPECT_THROW(
      parse("{" + head + R"(, "configs": ["c"], "kappas": [0.12],
             "sources": ["wall:0"], "solver": {"kind": "warp"}})"),
      Error);  // unknown solver kind
  EXPECT_THROW(
      parse("{" + head + R"(, "configs": ["c"], "kappas": [0.12],
             "sources": ["wall:0"], "schedule": {"machine": "cray"}})"),
      Error);  // unknown machine preset
}

TEST(CampaignSpec, BuildsConfigMajorTaskList) {
  CampaignSpec spec = small_spec("unused");
  spec.configs = {shared_config(), shared_config()};
  const std::vector<SolveTask> tasks = build_tasks(spec);
  ASSERT_EQ(tasks.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tasks[std::size_t(i)].id, i);  // ids dense, in order
    EXPECT_EQ(tasks[std::size_t(i)].config, i / 4);
    EXPECT_EQ(tasks[std::size_t(i)].kappa, (i / 2) % 2);
    EXPECT_EQ(tasks[std::size_t(i)].source, i % 2);
  }
}

TEST(Journal, AppendReplayRoundTrip) {
  const std::string dir = scratch("journal_roundtrip");
  const std::string path = dir + "/j.lqj";
  Journal j;
  j.open(path);
  j.append(RecordType::CampaignBegin, R"({"tasks": 2})");
  j.append(RecordType::TaskRunning, R"({"task": 0})");
  j.append(RecordType::TaskDone, R"({"task": 0, "iterations": 7})");
  const ReplayResult r = replay_journal(path);
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.truncated_bytes, 0u);
  EXPECT_EQ(r.records[0].type, RecordType::CampaignBegin);
  EXPECT_EQ(r.records[2].payload, R"({"task": 0, "iterations": 7})");
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(r.records[i].seq, i);
}

TEST(Journal, TornTailIsDroppedAndOverwritten) {
  const std::string dir = scratch("journal_torn");
  const std::string path = dir + "/j.lqj";
  {
    Journal j;
    j.open(path);
    j.append(RecordType::CampaignBegin, "{}");
    j.append(RecordType::TaskRunning, R"({"task": 0})");
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("LQJR\x02\x00\x00", 7);
  }
  Journal j;
  const ReplayResult r = j.open(path);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.truncated_bytes, 7u);
  // open() truncated the tail; the next append lands on a clean boundary.
  j.append(RecordType::TaskDone, R"({"task": 0})");
  const ReplayResult r2 = replay_journal(path);
  ASSERT_EQ(r2.records.size(), 3u);
  EXPECT_EQ(r2.truncated_bytes, 0u);
  EXPECT_EQ(r2.records[2].seq, 2u);
}

TEST(Journal, CorruptFrameStopsReplayAtLastGoodPrefix) {
  const std::string dir = scratch("journal_corrupt");
  const std::string path = dir + "/j.lqj";
  {
    Journal j;
    j.open(path);
    j.append(RecordType::CampaignBegin, "{}");
    j.append(RecordType::TaskDone, R"({"task": 0})");
    j.append(RecordType::TaskDone, R"({"task": 1})");
  }
  const ReplayResult before = replay_journal(path);
  ASSERT_EQ(before.records.size(), 3u);
  // Flip one payload bit inside the second frame.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(before.valid_bytes) / 2);
    char c = 0;
    f.read(&c, 1);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x01);
    f.write(&c, 1);
  }
  const ReplayResult after = replay_journal(path);
  EXPECT_LT(after.records.size(), 3u);  // CRC caught the flip
  EXPECT_GT(after.truncated_bytes, 0u);
}

TEST(Scheduler, DeterministicCoveringShard) {
  CampaignSpec spec = small_spec("unused");
  spec.ranks = 3;
  const std::vector<SolveTask> tasks = build_tasks(spec);
  const LatticeGeometry geo({4, 4, 4, 4});
  const MachineModel machine = machine_by_name(spec.machine);
  const ShardPlan a = shard_tasks(spec, tasks, geo, machine);
  const ShardPlan b = shard_tasks(spec, tasks, geo, machine);
  EXPECT_EQ(a.lane_of, b.lane_of);  // pure function of the spec
  EXPECT_EQ(a.lanes, b.lanes);

  // Every task lands on exactly one lane, consistently with lane_of.
  std::set<int> seen;
  for (std::size_t l = 0; l < a.lanes.size(); ++l)
    for (const int id : a.lanes[l]) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_EQ(a.lane_of[std::size_t(id)], static_cast<int>(l));
    }
  EXPECT_EQ(seen.size(), tasks.size());
  EXPECT_GE(a.imbalance(), 1.0);

  // Within a lane: config-major execution order.
  for (const auto& lane : a.lanes)
    for (std::size_t i = 1; i < lane.size(); ++i) {
      const SolveTask& prev = tasks[std::size_t(lane[i - 1])];
      const SolveTask& cur = tasks[std::size_t(lane[i])];
      EXPECT_LE(prev.config, cur.config);
    }
}

TEST(CampaignService, RunsCampaignAndWritesResult) {
  const std::string dir = scratch("run");
  CampaignService service(small_spec(dir));
  const CampaignOutcome out = service.run();
  EXPECT_TRUE(out.finished);
  EXPECT_EQ(out.total, 4);
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.skipped, 0);
  EXPECT_EQ(done_payloads(service.journal_path()).size(), 4u);

  // result.json is valid JSON carrying results + telemetry.
  std::ifstream is(dir + "/result.json");
  ASSERT_TRUE(is.good());
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "lqcd.campaign.result/1");
  EXPECT_EQ(doc.at("results").size(), 4u);
  EXPECT_EQ(doc.at("telemetry").at("schema").as_string(),
            "lqcd.telemetry/1");

  // Re-running a finished campaign recomputes nothing.
  CampaignService again(small_spec(dir));
  const CampaignOutcome out2 = again.run();
  EXPECT_EQ(out2.completed, 0);
  EXPECT_EQ(out2.skipped, 4);
}

TEST(CampaignService, KillResumeRecomputesNothing) {
  const std::string dir = scratch("kill");

  // Kill lane 0 at its second execution slot: by then the first wave
  // (epochs 0, 1) has finished two tasks.
  FaultInjector faults(7);
  faults.schedule_kill(/*rank=*/0, /*epoch=*/2);
  CampaignService service(small_spec(dir), {.faults = &faults});
  EXPECT_THROW(service.run(), TransientError);
  const auto before = done_payloads(service.journal_path());
  EXPECT_EQ(before.size(), 2u);
  const CampaignStatus mid = CampaignService::status(service.journal_path());
  EXPECT_EQ(mid.done, 2);
  EXPECT_EQ(mid.in_flight, 1);  // the killed task's dangling Running frame
  EXPECT_FALSE(mid.finished);

  // Resume without faults: only the unfinished tasks run.
  CampaignService resumed(small_spec(dir));
  const CampaignOutcome out = resumed.run();
  EXPECT_EQ(out.skipped, 2);
  EXPECT_EQ(out.completed, 2);

  // Zero recompute, journal-verified: every task finished before the kill
  // has exactly one Running frame in the whole (pre + post) journal.
  std::map<int, int> running_frames;
  for (const Record& r : replay_journal(resumed.journal_path()).records)
    if (r.type == RecordType::TaskRunning)
      ++running_frames[json::Value::parse(r.payload).get_or("task", -1)];
  for (const auto& [id, payload] : before) EXPECT_EQ(running_frames[id], 1);

  // The interrupted journal's results are byte-identical to an
  // uninterrupted campaign's (TaskDone payloads carry no wall-clock).
  const std::string clean_dir = scratch("kill_clean");
  CampaignService clean(small_spec(clean_dir));
  clean.run();
  EXPECT_EQ(done_payloads(resumed.journal_path()),
            done_payloads(clean.journal_path()));
}

TEST(CampaignService, TransientFaultsAreRetried) {
  const std::string dir = scratch("retry");
  FaultInjector faults(13, {.drop_prob = 1.0});
  faults.set_event_budget(2);  // two injected failures, then clean
  CampaignService service(small_spec(dir), {.faults = &faults});
  const CampaignOutcome out = service.run();
  EXPECT_TRUE(out.finished);
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.transient_failures, 2);
  int failed_frames = 0;
  for (const Record& r : replay_journal(service.journal_path()).records)
    failed_frames += r.type == RecordType::TaskFailed;
  EXPECT_EQ(failed_frames, 2);
}

TEST(CampaignService, ExhaustedRetryBudgetIsFatal) {
  const std::string dir = scratch("fatal");
  CampaignSpec spec = small_spec(dir);
  spec.max_retries = 1;
  FaultInjector faults(17, {.drop_prob = 1.0});  // unlimited budget
  CampaignService service(spec, {.faults = &faults});
  EXPECT_THROW(service.run(), FatalError);
}

TEST(CampaignService, RefusesForeignJournal) {
  const std::string dir = scratch("foreign");
  CampaignService first(small_spec(dir));
  first.run();
  CampaignSpec other = small_spec(dir);  // same journal, different spec
  other.kappas = {0.112, 0.117};
  CampaignService second(other);
  EXPECT_THROW(second.run(), FatalError);
}

TEST(CampaignService, StatusOnMissingJournal) {
  const CampaignStatus st = CampaignService::status("does_not_exist.lqj");
  EXPECT_FALSE(st.journal_found);
  EXPECT_EQ(st.frames, 0u);
}

TEST(FaultInjector, HonorsAListOfScheduledKills) {
  FaultInjector fi(7);
  fi.schedule_kill(0, 2);
  fi.schedule_kill(1, 5);  // must not overwrite the first kill
  fi.schedule_kill(0, 9);
  EXPECT_TRUE(fi.should_kill(2, 0));
  EXPECT_TRUE(fi.should_kill(5, 1));
  EXPECT_TRUE(fi.should_kill(9, 0));
  EXPECT_FALSE(fi.should_kill(2, 1));  // rank mismatch
  EXPECT_FALSE(fi.should_kill(5, 0));
  EXPECT_FALSE(fi.should_kill(3, 0));  // epoch mismatch
  fi.clear_kills();
  EXPECT_FALSE(fi.should_kill(2, 0));
  EXPECT_FALSE(fi.should_kill(5, 1));
}

TEST(LaneHealth, HealthyToSuspectToDeadWithRecovery) {
  LaneHealthModel h(3, /*deadline_misses=*/2);
  EXPECT_EQ(h.alive_count(), 3);
  EXPECT_EQ(h.miss(0), LaneHealth::Suspect);
  h.heartbeat(0);  // on-time completion clears the streak
  EXPECT_EQ(h.health(0), LaneHealth::Healthy);
  EXPECT_EQ(h.miss(0), LaneHealth::Suspect);
  EXPECT_EQ(h.miss(0), LaneHealth::Dead);  // second consecutive miss
  EXPECT_FALSE(h.alive(0));
  h.heartbeat(0);  // death is permanent
  EXPECT_EQ(h.health(0), LaneHealth::Dead);
  EXPECT_EQ(h.alive_count(), 2);
  EXPECT_EQ(h.dead_count(), 1);
  h.suspect(1);  // suspicion without a streak: one miss still needed
  EXPECT_EQ(h.health(1), LaneHealth::Suspect);
  h.mark_dead(2);
  EXPECT_EQ(h.alive_count(), 1);
}

TEST(Scheduler, ReshardOrphansIsDeterministicLpt) {
  // Orphans 0 (cost 5), 1 (cost 3), 2 (cost 5) off dead lane 0; lanes 1
  // and 2 survive with remaining 1.0 and 2.0. LPT order: 0 (tie with 2,
  // lower id first), 2, 1.
  const std::vector<double> cost = {5.0, 3.0, 5.0};
  std::vector<double> rem = {0.0, 1.0, 2.0};
  const std::vector<bool> alive = {false, true, true};
  const std::vector<Reassignment> moves =
      reshard_orphans({0, 1, 2}, 0, cost, rem, alive);
  ASSERT_EQ(moves.size(), 3u);
  EXPECT_EQ(moves[0].task, 0);
  EXPECT_EQ(moves[0].to, 1);  // 1.0 < 2.0
  EXPECT_EQ(moves[1].task, 2);
  EXPECT_EQ(moves[1].to, 2);  // now 6.0 vs 2.0
  EXPECT_EQ(moves[2].task, 1);
  EXPECT_EQ(moves[2].to, 1);  // 6.0 vs 7.0
  EXPECT_DOUBLE_EQ(rem[1], 9.0);
  EXPECT_DOUBLE_EQ(rem[2], 7.0);

  std::vector<double> none_rem = {0.0, 0.0, 0.0};
  EXPECT_THROW(
      reshard_orphans({0}, 0, cost, none_rem, {false, false, false}),
      Error);  // no surviving lane
}

TEST(CampaignService, StatusCountsOpenRunsFailuresAndTornTails) {
  const std::string dir = scratch("status_coverage");
  const std::string path = dir + "/j.lqj";
  {
    Journal j;
    j.open(path);
    j.append(RecordType::CampaignBegin,
             R"({"name": "s", "fingerprint": 42, "tasks": 2})");
    j.append(RecordType::TaskRunning, R"({"task": 0, "attempt": 0})");
    j.append(RecordType::TaskFailed, R"({"task": 0, "attempt": 0})");
    j.append(RecordType::TaskRunning, R"({"task": 0, "attempt": 1})");
    j.append(RecordType::TaskDone, R"({"task": 0})");
    j.append(RecordType::TaskRunning, R"({"task": 1, "attempt": 0})");
  }
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write("LQJR\x06\x00", 6);  // torn frame at the tail
  }
  const CampaignStatus st = CampaignService::status(path);
  EXPECT_TRUE(st.journal_found);
  EXPECT_EQ(st.frames, 6u);
  EXPECT_EQ(st.total, 2);
  EXPECT_EQ(st.fingerprint, 42u);
  EXPECT_EQ(st.done, 1);
  EXPECT_EQ(st.failed_attempts, 1);
  EXPECT_EQ(st.in_flight, 1);  // task 1's Running frame is unsettled
  EXPECT_EQ(st.truncated_bytes, 6u);
  EXPECT_FALSE(st.finished);
}

TEST(CampaignService, LaneDeathCompletesDegradedOnSurvivor) {
  const std::string dir = scratch("lane_death");
  FaultInjector faults(23);
  faults.schedule_lane_death(/*lane=*/0, /*epoch=*/0);
  CampaignService service(small_spec(dir), {.faults = &faults});
  const CampaignOutcome out = service.run();

  // Lane 0 went silent before finishing anything: all 4 tasks complete
  // on lane 1, the campaign finishes degraded.
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.lanes_lost, 1);
  EXPECT_EQ(out.tasks_reassigned, 2);  // lane 0's shard moved over

  // The journal narrates the recovery.
  int lane_dead_frames = 0, reassigned_frames = 0;
  for (const Record& r : replay_journal(service.journal_path()).records) {
    lane_dead_frames += r.type == RecordType::LaneDead;
    reassigned_frames += r.type == RecordType::TaskReassigned;
  }
  EXPECT_EQ(lane_dead_frames, 1);
  EXPECT_EQ(reassigned_frames, 2);
  const CampaignStatus st = CampaignService::status(service.journal_path());
  EXPECT_TRUE(st.finished);
  EXPECT_EQ(st.lanes_lost, 1);
  EXPECT_EQ(st.tasks_reassigned, 2);
  EXPECT_EQ(st.speculative_tasks, 0);

  // Degraded-mode physics is still the physics: payloads byte-identical
  // to a fault-free campaign's.
  const std::string clean_dir = scratch("lane_death_clean");
  CampaignService clean(small_spec(clean_dir));
  clean.run();
  EXPECT_EQ(done_payloads(service.journal_path()),
            done_payloads(clean.journal_path()));
}

TEST(CampaignService, AllLanesDeadIsFatalAndJournalSurvives) {
  const std::string dir = scratch("all_dead");
  FaultInjector faults(29);
  faults.schedule_lane_death(0, 0);
  faults.schedule_lane_death(1, 0);
  CampaignService service(small_spec(dir), {.faults = &faults});
  EXPECT_THROW(service.run(), FatalError);

  // The journal replays cleanly and still refuses resurrection: every
  // lane death is journaled, so a resume sees zero survivors.
  const CampaignStatus st = CampaignService::status(service.journal_path());
  EXPECT_TRUE(st.journal_found);
  EXPECT_EQ(st.lanes_lost, 2);
  EXPECT_FALSE(st.finished);
  CampaignService resumed(small_spec(dir));
  EXPECT_THROW(resumed.run(), FatalError);
}

TEST(CampaignService, KillAfterReassignmentReplaysRecovery) {
  const std::string dir = scratch("kill_recovery");

  // Lane 0 dies at epoch 0 (dead by its second slot, epoch 2); its two
  // tasks move to lane 1. Lane 1 is then killed at epoch 4, after two
  // completions — mid-recovery.
  FaultInjector faults(31);
  faults.schedule_lane_death(0, 0);
  faults.schedule_kill(/*rank=*/1, /*epoch=*/4);
  CampaignService service(small_spec(dir), {.faults = &faults});
  EXPECT_THROW(service.run(), TransientError);
  const auto before = done_payloads(service.journal_path());
  EXPECT_EQ(before.size(), 2u);

  // Resume fault-free: the journaled LaneDead/TaskReassigned frames
  // replay the recovery plan, lane 0 stays dead, nothing recomputes.
  CampaignService resumed(small_spec(dir));
  const CampaignOutcome out = resumed.run();
  EXPECT_TRUE(out.finished);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.skipped, 2);
  EXPECT_EQ(out.completed, 2);
  EXPECT_EQ(out.lanes_lost, 1);
  EXPECT_EQ(out.tasks_reassigned, 2);  // replayed, not re-decided
  int lane_dead_frames = 0, reassigned_frames = 0;
  std::map<int, int> running_frames;
  for (const Record& r : replay_journal(resumed.journal_path()).records) {
    lane_dead_frames += r.type == RecordType::LaneDead;
    reassigned_frames += r.type == RecordType::TaskReassigned;
    if (r.type == RecordType::TaskRunning)
      ++running_frames[json::Value::parse(r.payload).get_or("task", -1)];
  }
  EXPECT_EQ(lane_dead_frames, 1);   // no duplicate recovery decisions
  EXPECT_EQ(reassigned_frames, 2);
  for (const auto& [id, payload] : before) EXPECT_EQ(running_frames[id], 1);

  const std::string clean_dir = scratch("kill_recovery_clean");
  CampaignService clean(small_spec(clean_dir));
  clean.run();
  EXPECT_EQ(done_payloads(resumed.journal_path()),
            done_payloads(clean.journal_path()));
}

TEST(CampaignService, SpeculativeReplicaWinsOverStraggler) {
  const std::string dir = scratch("speculate");
  FaultInjector faults(37);
  FaultSpec straggly;
  straggly.task_straggle_prob = 1.0;
  straggly.task_straggle_mult = 8.0;  // blows the 4.0 heartbeat margin
  faults.set_rank_spec(0, straggly);
  faults.set_event_budget(1);  // one straggle, then lane 0 runs clean
  CampaignService service(small_spec(dir), {.faults = &faults});
  const CampaignOutcome out = service.run();

  // Lane 0 straggled on its first task; the replica on lane 1 finished
  // it first, lane 0 skipped it and completed the rest on time.
  EXPECT_TRUE(out.finished);
  EXPECT_FALSE(out.degraded);  // suspect lane recovered, nothing died
  EXPECT_EQ(out.completed, 4);
  EXPECT_EQ(out.lanes_lost, 0);
  EXPECT_EQ(out.speculative_tasks, 1);
  EXPECT_EQ(out.speculative_wins, 1);
  EXPECT_EQ(faults.stats().task_straggles.load(), 1);

  // Exactly one TaskDone per task (done_payloads asserts no duplicates),
  // byte-identical to a fault-free campaign.
  const auto payloads = done_payloads(service.journal_path());
  EXPECT_EQ(payloads.size(), 4u);
  const std::string clean_dir = scratch("speculate_clean");
  CampaignService clean(small_spec(clean_dir));
  clean.run();
  EXPECT_EQ(payloads, done_payloads(clean.journal_path()));

  const CampaignStatus st = CampaignService::status(service.journal_path());
  EXPECT_EQ(st.speculative_tasks, 1);
  EXPECT_EQ(st.lanes_lost, 0);
}

TEST(CampaignService, CompactionPreservesStatusAndResume) {
  const std::string dir = scratch("compact");

  // Build an eventful journal: two injected transient failures, a kill
  // mid-campaign, then a fault-free resume to completion.
  {
    FaultInjector faults(41, {.drop_prob = 1.0});
    faults.set_event_budget(2);
    faults.schedule_kill(/*rank=*/1, /*epoch=*/3);
    CampaignService service(small_spec(dir), {.faults = &faults});
    EXPECT_THROW(service.run(), TransientError);
    CampaignService resumed(small_spec(dir));
    EXPECT_TRUE(resumed.run().finished);
  }
  const std::string journal = dir + "/journal.lqj";
  const CampaignStatus before = CampaignService::status(journal);
  ASSERT_TRUE(before.finished);
  ASSERT_EQ(before.done, 4);
  ASSERT_GT(before.failed_attempts, 0);

  const CompactionStats cs = compact_journal(journal);
  EXPECT_LT(cs.frames_after, cs.frames_before);
  EXPECT_LT(cs.bytes_after, cs.bytes_before);

  // `status` cannot tell the difference...
  const CampaignStatus after = CampaignService::status(journal);
  EXPECT_EQ(after.total, before.total);
  EXPECT_EQ(after.done, before.done);
  EXPECT_EQ(after.failed_attempts, before.failed_attempts);
  EXPECT_EQ(after.in_flight, before.in_flight);
  EXPECT_EQ(after.finished, before.finished);
  EXPECT_EQ(after.fingerprint, before.fingerprint);
  EXPECT_EQ(after.lanes_lost, before.lanes_lost);
  EXPECT_EQ(after.tasks_reassigned, before.tasks_reassigned);
  EXPECT_EQ(after.speculative_tasks, before.speculative_tasks);

  // ...and neither can a resume: everything is still finished.
  CampaignService again(small_spec(dir));
  const CampaignOutcome out = again.run();
  EXPECT_EQ(out.skipped, 4);
  EXPECT_EQ(out.completed, 0);

  // Compacting a compacted journal is the identity.
  const CompactionStats cs2 = compact_journal(journal);
  EXPECT_EQ(cs2.frames_after, cs2.frames_before);
}

}  // namespace
}  // namespace lqcd::serve
