// Tests for the split-phase (begin/finish) halo exchange and the
// comm/compute-overlapped distributed operators: interior/surface
// partition integrity, misuse guards, bit-identity of the overlapped
// schedule against the blocking one across thread counts and process
// grids (including under fault injection, where a corrupted face must
// retransmit correctly even though its unpack is deferred to
// exchange_finish), and the distributed even-odd/Schur path.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "comm/dist_eo.hpp"
#include "comm/halo.hpp"
#include "comm/process_grid.hpp"
#include "dirac/eo.hpp"
#include "dirac/normal.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo8() {
  static LatticeGeometry geo({8, 4, 4, 8});
  return geo;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

GaugeFieldD thermal8(std::uint64_t seed) {
  GaugeFieldD u(geo8());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < 3; ++i) hb.sweep();
  return u;
}

double span_diff2(std::span<const WilsonSpinorD> a,
                  std::span<const WilsonSpinorD> b) {
  double diff = 0.0;
  for (std::size_t s = 0; s < a.size(); ++s) diff += norm2(a[s] - b[s]);
  return diff;
}

// --- interior/surface partition ----------------------------------------

TEST(HaloPartition, CoversLocalVolumeDisjointly) {
  const HaloLattice h({4, 4, 2, 6});
  EXPECT_EQ(static_cast<std::int64_t>(h.interior_sites().size() +
                                      h.surface_sites().size()),
            h.interior_volume());
  std::set<std::int64_t> seen;
  for (const std::int64_t i : h.interior_sites()) seen.insert(i);
  for (const std::int64_t i : h.surface_sites()) seen.insert(i);
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), h.interior_volume());
  // Interior sites sit >= 1 from every face; surface sites touch one.
  for (const std::int64_t i : h.interior_sites()) {
    const Coord x = h.interior_coords(i);
    for (int mu = 0; mu < Nd; ++mu) {
      EXPECT_GT(x[mu], 0);
      EXPECT_LT(x[mu], h.local_dims()[mu] - 1);
    }
  }
  for (const std::int64_t i : h.surface_sites()) {
    const Coord x = h.interior_coords(i);
    bool on_face = false;
    for (int mu = 0; mu < Nd; ++mu)
      on_face = on_face || x[mu] == 0 || x[mu] == h.local_dims()[mu] - 1;
    EXPECT_TRUE(on_face);
  }
}

TEST(HaloPartition, ParitySplitIsConsistent) {
  const HaloLattice h({4, 6, 4, 4});
  for (int par = 0; par < 2; ++par) {
    for (const std::int64_t i : h.interior_sites(par)) {
      const Coord x = h.interior_coords(i);
      EXPECT_EQ((x[0] + x[1] + x[2] + x[3]) & 1, par);
    }
    for (const std::int64_t i : h.surface_sites(par)) {
      const Coord x = h.interior_coords(i);
      EXPECT_EQ((x[0] + x[1] + x[2] + x[3]) & 1, par);
    }
  }
  EXPECT_EQ(h.interior_sites(0).size() + h.interior_sites(1).size(),
            h.interior_sites().size());
  EXPECT_EQ(h.surface_sites(0).size() + h.surface_sites(1).size(),
            h.surface_sites().size());
}

TEST(HaloPartition, ThinExtentHasEmptyInterior) {
  // With any local extent == 2 every site touches a face: the overlap
  // window is empty and the whole sweep runs after exchange_finish.
  const HaloLattice h({2, 4, 4, 4});
  EXPECT_TRUE(h.interior_sites().empty());
  EXPECT_EQ(static_cast<std::int64_t>(h.surface_sites().size()),
            h.interior_volume());
}

// --- split-phase exchange ----------------------------------------------

TEST(SplitExchange, MisuseGuardsThrow) {
  VirtualCluster<double> vc(geo8(), ProcessGrid({2, 1, 1, 2}));
  auto f = vc.make_fermion();
  auto g = vc.make_fermion();
  EXPECT_THROW(vc.exchange_finish(f), Error);  // finish without begin
  EXPECT_FALSE(vc.exchange_in_flight());
  vc.exchange_begin(f);
  EXPECT_TRUE(vc.exchange_in_flight());
  EXPECT_THROW(vc.exchange_begin(f), Error);    // double begin
  EXPECT_THROW(vc.exchange(f), Error);          // blocking while in flight
  EXPECT_THROW(vc.exchange_finish(g), Error);   // wrong field
  EXPECT_TRUE(vc.exchange_in_flight());         // guards don't cancel it
  vc.exchange_finish(f);                        // matching finish is fine
  EXPECT_FALSE(vc.exchange_in_flight());
  EXPECT_EQ(vc.stats().exchanges, 1);
}

TEST(SplitExchange, MatchesBlockingExchange) {
  FermionFieldD f(geo8());
  fill_random(f.span(), 991);
  const ProcessGrid pg({2, 1, 1, 2});
  VirtualCluster<double> a(geo8(), pg);
  VirtualCluster<double> b(geo8(), pg);
  auto ra = a.make_fermion();
  auto rb = b.make_fermion();
  a.scatter(ra, f.span());
  b.scatter(rb, f.span());
  a.exchange(ra);
  b.exchange_begin(rb);
  b.exchange_finish(rb);
  for (int r = 0; r < a.ranks(); ++r) {
    const auto& va = ra[static_cast<std::size_t>(r)];
    const auto& vb = rb[static_cast<std::size_t>(r)];
    double diff = 0.0;
    for (std::size_t i = 0; i < va.size(); ++i) diff += norm2(va[i] - vb[i]);
    ASSERT_EQ(diff, 0.0) << "rank " << r;
  }
  EXPECT_EQ(a.stats().messages, b.stats().messages);
  EXPECT_EQ(a.stats().bytes, b.stats().bytes);
  EXPECT_EQ(a.stats().exchanges, b.stats().exchanges);
}

// --- overlapped dslash bit-identity ------------------------------------

class OverlapGrid : public ::testing::TestWithParam<Coord> {};

TEST_P(OverlapGrid, OverlappedMatchesBlockingAcrossThreadCounts) {
  const GaugeFieldD u = thermal8(310);
  const double kappa = 0.12;
  FermionFieldD in(geo8()), blocking(geo8()), overlapped(geo8());
  fill_random(in.span(), 311);

  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid(GetParam()));
  dist.set_overlap(false);
  dist.apply(blocking.span(), in.span());

  for (const int threads : {1, 2, 8}) {
    ThreadPool::set_global_threads(static_cast<std::size_t>(threads));
    dist.set_overlap(true);
    dist.apply(overlapped.span(), in.span());
    EXPECT_EQ(span_diff2(blocking.span(), overlapped.span()), 0.0)
        << "threads " << threads;
    dist.set_overlap(false);
    dist.apply(overlapped.span(), in.span());
    EXPECT_EQ(span_diff2(blocking.span(), overlapped.span()), 0.0)
        << "blocking, threads " << threads;
  }
  ThreadPool::set_global_threads(0);
  // Interior + surface cover each rank's volume once per overlapped apply.
  const OverlapStats& ov = dist.overlap_stats();
  EXPECT_EQ(ov.interior_sites + ov.surface_sites,
            ov.applies * geo8().volume());
}

INSTANTIATE_TEST_SUITE_P(Grids, OverlapGrid,
                         ::testing::Values(Coord{1, 1, 1, 1},
                                           Coord{2, 1, 1, 1},
                                           Coord{2, 1, 1, 2},
                                           Coord{2, 2, 1, 2},
                                           Coord{2, 2, 2, 2},
                                           Coord{4, 1, 1, 4}));

TEST(OverlapFault, CorruptedFaceRetransmitsWithDeferredUnpack) {
  // A tampered payload is only detected in exchange_finish, after the
  // interior compute has run. The retransmit repacks from the (still
  // pristine) boundary planes, so the overlapped apply must match a
  // fault-free one bit for bit.
  const GaugeFieldD u = thermal8(320);
  const double kappa = 0.12;
  FermionFieldD in(geo8()), clean(geo8()), faulty(geo8());
  fill_random(in.span(), 321);

  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));
  dist.apply(clean.span(), in.span());

  FaultInjector fi(4242, {.corrupt_prob = 1.0});
  fi.set_event_budget(6);
  dist.cluster().set_resilience({.checksum = true, .max_retries = 8});
  dist.cluster().set_fault_injector(&fi);
  dist.apply(faulty.span(), in.span());
  dist.cluster().set_fault_injector(nullptr);

  EXPECT_EQ(span_diff2(clean.span(), faulty.span()), 0.0);
  EXPECT_EQ(dist.cluster().stats().crc_failures, 6);
  EXPECT_EQ(dist.cluster().stats().retransmits, 6);
  EXPECT_EQ(fi.stats().corruptions.load(), 6);
}

TEST(OverlapFault, DroppedFaceRetransmitsWithDeferredUnpack) {
  const GaugeFieldD u = thermal8(330);
  const double kappa = 0.12;
  FermionFieldD in(geo8()), clean(geo8()), faulty(geo8());
  fill_random(in.span(), 331);

  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));
  dist.apply(clean.span(), in.span());

  FaultInjector fi(9000, {.drop_prob = 1.0});
  fi.set_event_budget(4);
  dist.cluster().set_resilience({.checksum = true, .max_retries = 8});
  dist.cluster().set_fault_injector(&fi);
  dist.apply(faulty.span(), in.span());
  dist.cluster().set_fault_injector(nullptr);

  EXPECT_EQ(span_diff2(clean.span(), faulty.span()), 0.0);
  EXPECT_EQ(dist.cluster().stats().timeouts, 4);
  EXPECT_EQ(dist.cluster().stats().retransmits, 4);
}

TEST(OverlapFault, RankDeathInBeginLeavesClusterReusable) {
  const GaugeFieldD u = thermal8(340);
  FermionFieldD in(geo8()), out(geo8());
  fill_random(in.span(), 341);
  DistributedWilsonOperator<double> dist(u, 0.12, ProcessGrid({2, 1, 1, 1}));
  FaultInjector fi(7);
  fi.schedule_kill(1, dist.cluster().stats().exchanges);
  dist.cluster().set_fault_injector(&fi);
  EXPECT_THROW(dist.apply(out.span(), in.span()), TransientError);
  EXPECT_FALSE(dist.cluster().exchange_in_flight());
  dist.cluster().set_fault_injector(nullptr);
  // The failed begin was rolled back; the next apply runs clean.
  FermionFieldD again(geo8()), ref(geo8());
  dist.apply(again.span(), in.span());
  DistributedWilsonOperator<double> fresh(u, 0.12, ProcessGrid({2, 1, 1, 1}));
  fresh.apply(ref.span(), in.span());
  EXPECT_EQ(span_diff2(again.span(), ref.span()), 0.0);
}

TEST(OverlapStatsTest, PhaseTimesAndHiddenFraction) {
  const GaugeFieldD u = thermal8(350);
  FermionFieldD in(geo8()), out(geo8());
  fill_random(in.span(), 351);
  DistributedWilsonOperator<double> dist(u, 0.12, ProcessGrid({2, 1, 1, 2}));
  for (int k = 0; k < 3; ++k) dist.apply(out.span(), in.span());
  const OverlapStats& ov = dist.overlap_stats();
  EXPECT_EQ(ov.applies, 3);
  EXPECT_GT(ov.interior_sites, 0);
  EXPECT_GT(ov.surface_sites, 0);
  EXPECT_GE(ov.t_comm_s(), 0.0);
  EXPECT_GT(ov.t_compute_s(), 0.0);
  EXPECT_GE(ov.hidden_fraction(), 0.0);
  EXPECT_LE(ov.hidden_fraction(), 1.0);
  EXPECT_LE(ov.t_overlapped_s(), ov.t_sequential_s());
  dist.reset_overlap_stats();
  EXPECT_EQ(dist.overlap_stats().applies, 0);
}

// --- distributed even-odd / Schur path ---------------------------------

class DistSchurGrid : public ::testing::TestWithParam<Coord> {};

TEST_P(DistSchurGrid, MatchesSingleDomainSchurOperator) {
  const GaugeFieldD u = thermal8(360);
  const double kappa = 0.12;
  const std::int64_t hv = geo8().half_volume();
  SchurWilsonOperator<double> single(u, kappa);
  DistributedSchurWilsonOperator<double> dist(u, kappa,
                                              ProcessGrid(GetParam()));

  std::vector<WilsonSpinorD> xo(static_cast<std::size_t>(hv));
  std::vector<WilsonSpinorD> a(static_cast<std::size_t>(hv));
  std::vector<WilsonSpinorD> b(static_cast<std::size_t>(hv));
  fill_random(xo, 361);
  single.apply(a, xo);
  dist.apply(b, xo);
  EXPECT_EQ(span_diff2(a, b), 0.0) << "apply";
  dist.set_overlap(false);
  dist.apply(b, xo);
  EXPECT_EQ(span_diff2(a, b), 0.0) << "apply (blocking)";
  dist.set_overlap(true);

  FermionFieldD bfull(geo8());
  fill_random(bfull.span(), 362);
  single.prepare_rhs(a, bfull.span());
  dist.prepare_rhs(b, bfull.span());
  EXPECT_EQ(span_diff2(a, b), 0.0) << "prepare_rhs";

  FermionFieldD xa(geo8()), xb(geo8());
  single.reconstruct(xa.span(), xo, bfull.span());
  dist.reconstruct(xb.span(), xo, bfull.span());
  EXPECT_EQ(span_diff2(xa.span(), xb.span()), 0.0) << "reconstruct";
}

INSTANTIATE_TEST_SUITE_P(Grids, DistSchurGrid,
                         ::testing::Values(Coord{1, 1, 1, 1},
                                           Coord{2, 1, 1, 2},
                                           Coord{2, 2, 2, 2}));

TEST(DistSchur, CgIterationsIdenticalToSingleDomain) {
  // eo-CG through the overlapped cluster must reproduce the single-domain
  // iteration history exactly — the Schur path feeds every production
  // solve, so this is the bit-identity claim that matters most.
  const GaugeFieldD u = thermal8(370);
  const double kappa = 0.12;
  const std::int64_t hv = geo8().half_volume();
  SchurWilsonOperator<double> single(u, kappa);
  DistributedSchurWilsonOperator<double> dist(u, kappa,
                                              ProcessGrid({2, 1, 1, 2}));
  NormalOperator<double> n_single(single);
  NormalOperator<double> n_dist(dist);

  std::vector<WilsonSpinorD> rhs(static_cast<std::size_t>(hv));
  std::vector<WilsonSpinorD> x1(static_cast<std::size_t>(hv));
  std::vector<WilsonSpinorD> x2(static_cast<std::size_t>(hv));
  fill_random(rhs, 371);
  SolverParams p{.tol = 1e-10, .max_iterations = 2000};
  const SolverResult r1 = cg_solve<double>(n_single, x1, rhs, p);
  const SolverResult r2 = cg_solve<double>(n_dist, x2, rhs, p);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  EXPECT_EQ(span_diff2(x1, x2), 0.0);
}

}  // namespace
}  // namespace lqcd
