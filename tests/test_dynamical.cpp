// Tests for two-flavor dynamical Wilson HMC: the fermion force against a
// finite difference of the pseudofermion action (the decisive check),
// integrator scaling, reversibility via the generic MD driver, Metropolis
// behaviour and sea-quark screening of the plaquette.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/dynamical.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

GaugeFieldD mildly_thermal(std::uint64_t seed, double beta = 5.4) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = beta, .or_per_hb = 1, .seed = seed + 7});
  for (int i = 0; i < 4; ++i) hb.sweep();
  return u;
}

void fill_gaussian(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

double field_distance(const GaugeFieldD& a, const GaugeFieldD& b) {
  double d = 0.0;
  for (std::int64_t s = 0; s < a.geometry().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) d += norm2(a(s, mu) - b(s, mu));
  return std::sqrt(d);
}

TEST(FermionForce, MatchesFiniteDifferenceOfAction) {
  // Along dU/dt = p U, energy conservation needs
  // dS_pf/dt = -2 sum tr(p F_f). Check against a central difference.
  const GaugeFieldD u0 = mildly_thermal(900);
  DynamicalHmcParams params;
  params.kappa = 0.10;
  params.solver_tol = 1e-12;

  FermionFieldD phi(geo4());
  fill_gaussian(phi.span(), 901);

  // Analytic: F_f from X = (M^†M)^{-1} phi, Y = M X.
  WilsonOperator<double> m(u0, params.kappa, params.bc);
  NormalOperator<double> mdm(m);
  FermionFieldD x(geo4()), y(geo4());
  SolverParams sp{.tol = 1e-12, .max_iterations = 10000};
  ASSERT_TRUE(cg_solve<double>(mdm, x.span(), phi.span(), sp).converged);
  m.apply(y.span(), x.span());

  Field<LinkSite<double>> f(geo4());
  add_wilson_fermion_force(f, m.fermion_links(), params.kappa, x.span(),
                           y.span());

  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(902));

  double analytic = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      analytic += trace(mul(p[s][static_cast<std::size_t>(mu)],
                            f[s][static_cast<std::size_t>(mu)]))
                      .re;
  analytic *= -2.0;

  const double eps = 1e-5;
  auto action_at = [&](double t) {
    GaugeFieldD u(geo4());
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      for (int mu = 0; mu < Nd; ++mu) {
        ColorMatrixD step = p[s][static_cast<std::size_t>(mu)];
        step *= t;
        u(s, mu) = mul(exp_matrix(step), u0(s, mu));
      }
    return pseudofermion_action(u, params, phi.span());
  };
  const double numeric = (action_at(eps) - action_at(-eps)) / (2.0 * eps);
  EXPECT_NEAR(numeric, analytic, 1e-4 * std::abs(analytic) + 1e-6);
}

TEST(FermionForce, VanishesAtInfiniteMass) {
  // kappa -> 0 decouples the sea quarks: the force carries the explicit
  // kappa prefactor plus kappa-dependence in X, Y, so it shrinks fast.
  const GaugeFieldD u = mildly_thermal(903);
  FermionFieldD phi(geo4());
  fill_gaussian(phi.span(), 904);
  auto force_norm = [&](double kappa) {
    WilsonOperator<double> m(u, kappa);
    NormalOperator<double> mdm(m);
    FermionFieldD x(geo4()), y(geo4());
    SolverParams sp{.tol = 1e-10, .max_iterations = 10000};
    cg_solve<double>(mdm, x.span(), phi.span(), sp);
    m.apply(y.span(), x.span());
    Field<LinkSite<double>> f(geo4());
    add_wilson_fermion_force(f, m.fermion_links(), kappa, x.span(),
                             y.span());
    double n = 0.0;
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      for (int mu = 0; mu < Nd; ++mu)
        n += norm2(f[s][static_cast<std::size_t>(mu)]);
    return std::sqrt(n);
  };
  EXPECT_LT(force_norm(0.02), 0.5 * force_norm(0.10));
}

TEST(DynamicalHmcDriver, EnergyErrorScalesAsDtSquared) {
  auto abs_dh = [&](int steps) {
    GaugeFieldD u = mildly_thermal(905);
    DynamicalHmcParams params;
    params.beta = 5.4;
    params.kappa = 0.10;
    params.trajectory_length = 0.4;
    params.steps = steps;
    params.integrator = Integrator::Leapfrog;
    params.seed = 906;
    DynamicalHmc hmc(u, params);
    return std::abs(hmc.trajectory().delta_h);
  };
  const double coarse = abs_dh(4);
  const double fine = abs_dh(8);
  // Asymptotically the leapfrog trajectory error falls 4x per halving;
  // at coarse steps higher-order terms can push the single-trajectory
  // ratio above that, so only bound it from below and sanity-cap it.
  EXPECT_GT(coarse / fine, 2.5);
  EXPECT_LT(coarse / fine, 40.0);
}

TEST(DynamicalHmcDriver, HighAcceptanceAtFineSteps) {
  GaugeFieldD u = mildly_thermal(907);
  DynamicalHmcParams params;
  params.beta = 5.4;
  params.kappa = 0.10;
  params.trajectory_length = 0.4;
  params.steps = 12;
  params.seed = 908;
  DynamicalHmc hmc(u, params);
  int accepted = 0;
  double max_dh = 0.0;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    const DynamicalTrajectoryResult r = hmc.trajectory();
    accepted += r.accepted;
    max_dh = std::max(max_dh, std::abs(r.delta_h));
    EXPECT_GT(r.cg_iterations, 0);
  }
  EXPECT_GE(accepted, n - 1);
  EXPECT_LT(max_dh, 1.0);
  EXPECT_LT(u.max_unitarity_error(), 1e-10);
}

TEST(DynamicalHmcDriver, RejectRestoresConfiguration) {
  GaugeFieldD u = mildly_thermal(909);
  GaugeFieldD before(geo4());
  DynamicalHmcParams params;
  params.beta = 5.4;
  params.kappa = 0.10;
  params.trajectory_length = 3.0;  // absurdly coarse: certain reject
  params.steps = 1;
  params.integrator = Integrator::Leapfrog;
  params.seed = 910;
  DynamicalHmc hmc(u, params);
  bool saw_reject = false;
  for (int i = 0; i < 4 && !saw_reject; ++i) {
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      before.site(s) = u.site(s);
    const DynamicalTrajectoryResult r = hmc.trajectory();
    if (!r.accepted) {
      saw_reject = true;
      EXPECT_EQ(field_distance(u, before), 0.0);
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(DynamicalHmcDriver, HeavySeaQuarksDecouple) {
  // For very heavy sea quarks (small kappa) the determinant is nearly
  // field-independent (leading effect ~ kappa^4), so the dynamical
  // plaquette must agree with quenched within short-run statistics —
  // a physics check that the fermion force does not bias the sampler.
  const double beta = 5.4;
  GaugeFieldD u_dyn = mildly_thermal(911, beta);
  DynamicalHmcParams params;
  params.beta = beta;
  params.kappa = 0.05;
  params.trajectory_length = 0.75;
  params.steps = 10;
  params.seed = 912;
  DynamicalHmc hmc(u_dyn, params);
  double p_dyn = 0.0;
  const int n = 8;
  for (int i = 0; i < 4; ++i) hmc.trajectory();
  for (int i = 0; i < n; ++i) p_dyn += hmc.trajectory().plaquette;
  p_dyn /= n;
  EXPECT_GT(hmc.acceptance_rate(), 0.6);

  GaugeFieldD u_q(geo4());
  u_q.set_random(SiteRngFactory(913));
  Heatbath hb(u_q, {.beta = beta, .or_per_hb = 1, .seed = 914});
  double p_q = 0.0;
  for (int i = 0; i < 12; ++i) hb.sweep();
  for (int i = 0; i < 12; ++i) p_q += hb.sweep();
  p_q /= 12;

  EXPECT_NEAR(p_dyn, p_q, 0.03);
}

TEST(DynamicalHmcDriver, Validation) {
  GaugeFieldD u(geo4());
  u.set_unit();
  DynamicalHmcParams p;
  p.kappa = 0.3;
  EXPECT_THROW(DynamicalHmc(u, p), Error);
  p.kappa = 0.1;
  p.steps = 0;
  EXPECT_THROW(DynamicalHmc(u, p), Error);
}

}  // namespace
}  // namespace lqcd
