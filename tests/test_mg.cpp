// Tests for the adaptive aggregation multigrid subsystem (src/mg/):
// aggregation geometry, prolongator orthonormality, the Galerkin identity
// R A P = A_c, bit-reproducibility of the V-cycle across thread counts,
// MG-GCR convergence against the eo-CG reference, setup amortization and
// the mg.* telemetry surface, and the solver factory that exposes it all.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "mg/mg.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/factory.hpp"
#include "util/rng.hpp"
#include "util/telemetry.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& shared_gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(2100));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 2101});
    for (int i = 0; i < 6; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

/// Small MG configuration for the 4^4 test lattice (coarse grid 2^4).
mg::MgParams test_params() {
  mg::MgParams p;
  p.block = {2, 2, 2, 2};
  p.nvec = 4;
  p.setup_iters = 2;
  p.smoother = {{2, 2, 2, 2}, 2, 4};
  return p;
}

double fine_residual(const WilsonOperator<double>& m,
                     std::span<const WilsonSpinorD> x,
                     std::span<const WilsonSpinorD> b) {
  std::vector<WilsonSpinorD> mx(x.size());
  m.apply(std::span<WilsonSpinorD>(mx), x);
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err += norm2(mx[i] - b[i]);
    ref += norm2(b[i]);
  }
  return std::sqrt(err / ref);
}

TEST(Aggregation, PartitionsTheFineLattice) {
  const mg::Aggregation agg(geo4(), {2, 2, 2, 2});
  EXPECT_EQ(agg.coarse().volume(), 16);
  EXPECT_EQ(agg.aggregate_size(), 16);
  std::vector<int> seen(static_cast<std::size_t>(geo4().volume()), 0);
  for (std::int64_t xc = 0; xc < agg.coarse().volume(); ++xc) {
    const auto& sites = agg.sites(xc);
    EXPECT_EQ(static_cast<std::int64_t>(sites.size()), agg.aggregate_size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (i > 0) EXPECT_LT(sites[i - 1], sites[i]);  // fixed ascending order
      EXPECT_EQ(agg.coarse_of(sites[i]), xc);
      ++seen[static_cast<std::size_t>(sites[i])];
    }
  }
  for (const int n : seen) EXPECT_EQ(n, 1);  // exact partition
}

TEST(Aggregation, RejectsOddCoarseExtent) {
  // 4/4 = 1: coarse extent below the checkerboarding minimum.
  EXPECT_THROW(mg::Aggregation(geo4(), {4, 2, 2, 2}), Error);
  // 3 does not divide 4.
  EXPECT_THROW(mg::Aggregation(geo4(), {3, 2, 2, 2}), Error);
}

TEST(Prolongator, ColumnsOrthonormalPerAggregateAndChirality) {
  const WilsonOperator<double> m(shared_gauge(), 0.12);
  const mg::MgParams p = test_params();
  const SapPreconditioner<double> smoother(m, p.smoother);
  const mg::MgHierarchy<double> h = mg_setup(m, smoother, p);
  const mg::Aggregation& agg = *h.aggregation;
  const mg::Prolongator<double>& pr = *h.prolongator;

  for (std::int64_t xc = 0; xc < agg.coarse().volume(); ++xc) {
    for (int chi = 0; chi < 2; ++chi) {
      const int sp0 = mg::chirality_spin(chi);
      for (int j = 0; j < pr.nvec(); ++j) {
        for (int k = 0; k <= j; ++k) {
          Cplxd g{};
          for (const std::int64_t s : agg.sites(xc))
            for (int d = 0; d < 2; ++d)
              g += dot(pr.vec(k)[static_cast<std::size_t>(s)].s[sp0 + d],
                       pr.vec(j)[static_cast<std::size_t>(s)].s[sp0 + d]);
          const double expect = (j == k) ? 1.0 : 0.0;
          EXPECT_NEAR(g.re, expect, 1e-12);
          EXPECT_NEAR(g.im, 0.0, 1e-12);
        }
      }
    }
  }
}

TEST(Prolongator, RestrictIsAdjointOfProlong) {
  // <R psi, c> == <psi, P c> for random fine psi and coarse c.
  const WilsonOperator<double> m(shared_gauge(), 0.12);
  const mg::MgParams p = test_params();
  const SapPreconditioner<double> smoother(m, p.smoother);
  const mg::MgHierarchy<double> h = mg_setup(m, smoother, p);
  const auto vol = static_cast<std::size_t>(geo4().volume());

  FermionFieldD psi(geo4());
  fill_random(psi.span(), 2200);
  mg::CoarseVector<double> c(h.aggregation->coarse().volume(),
                             h.prolongator->ncols());
  SiteRngFactory rngs(2201);
  for (std::size_t i = 0; i < c.size(); ++i) {
    CounterRng rng = rngs.make(i);
    c[i] = Cplxd(rng.gaussian(), rng.gaussian());
  }

  mg::CoarseVector<double> rpsi(c.nsites(), c.ncols());
  h.prolongator->restrict_to(rpsi, psi.span());
  Cplxd lhs = mg::cblas::dot(rpsi, c);

  std::vector<WilsonSpinorD> pc(vol, WilsonSpinorD{});
  h.prolongator->prolong_add(std::span<WilsonSpinorD>(pc), c);
  Cplxd rhs{};
  for (std::size_t i = 0; i < vol; ++i) rhs += dot(psi.span()[i], pc[i]);

  EXPECT_NEAR(lhs.re, rhs.re, 1e-9 * std::abs(rhs.re) + 1e-10);
  EXPECT_NEAR(lhs.im, rhs.im, 1e-9 * std::abs(rhs.re) + 1e-10);
}

TEST(CoarseOperator, GalerkinIdentity) {
  // The assembled stencil must satisfy A_c v == R (M (P v)) exactly (up
  // to roundoff) for arbitrary coarse vectors: the link-by-link assembly
  // and the operator-composition definition are the same matrix.
  const WilsonOperator<double> m(shared_gauge(), 0.124);
  const mg::MgParams p = test_params();
  const SapPreconditioner<double> smoother(m, p.smoother);
  const mg::MgHierarchy<double> h = mg_setup(m, smoother, p);
  const auto vol = static_cast<std::size_t>(geo4().volume());

  mg::CoarseVector<double> v(h.aggregation->coarse().volume(),
                             h.prolongator->ncols());
  SiteRngFactory rngs(2300);
  for (std::size_t i = 0; i < v.size(); ++i) {
    CounterRng rng = rngs.make(i);
    v[i] = Cplxd(rng.gaussian(), rng.gaussian());
  }

  // Composition path: R M P v.
  std::vector<WilsonSpinorD> pv(vol, WilsonSpinorD{}), mpv(vol);
  h.prolongator->prolong_add(std::span<WilsonSpinorD>(pv), v);
  m.apply(std::span<WilsonSpinorD>(mpv),
          std::span<const WilsonSpinorD>(pv.data(), vol));
  mg::CoarseVector<double> rmp(v.nsites(), v.ncols());
  h.prolongator->restrict_to(rmp,
                             std::span<const WilsonSpinorD>(mpv.data(), vol));

  // Stencil path: A_c v.
  mg::CoarseVector<double> acv(v.nsites(), v.ncols());
  h.coarse->apply(acv, v);

  const double ref = std::sqrt(mg::cblas::norm2(rmp));
  double err = 0.0;
  for (std::size_t i = 0; i < acv.size(); ++i)
    err += norm2(acv[i] - rmp[i]);
  EXPECT_LT(std::sqrt(err) / ref, 1e-12);
}

TEST(CoarseOperator, FloatStorageHalvesFootprintAndTracksApply) {
  // compress_store() demotes the stencil to float (second rung of the
  // precision ladder): half the footprint, idempotent, and apply() — which
  // keeps accumulating in double — must track the double-stored result at
  // the float-entry level.
  const WilsonOperator<double> m(shared_gauge(), 0.124);
  const mg::MgParams p = test_params();
  const SapPreconditioner<double> smoother(m, p.smoother);
  mg::MgHierarchy<double> h = mg_setup(m, smoother, p);

  mg::CoarseVector<double> v(h.aggregation->coarse().volume(),
                             h.prolongator->ncols());
  SiteRngFactory rngs(2350);
  for (std::size_t i = 0; i < v.size(); ++i) {
    CounterRng rng = rngs.make(i);
    v[i] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  mg::CoarseVector<double> a(v.nsites(), v.ncols());
  h.coarse->apply(a, v);

  ASSERT_FALSE(h.coarse->single_storage());
  const std::size_t bytes_dbl = h.coarse->stencil_bytes();
  h.coarse->compress_store();
  EXPECT_TRUE(h.coarse->single_storage());
  EXPECT_EQ(h.coarse->stencil_bytes() * 2, bytes_dbl);
  h.coarse->compress_store();  // idempotent
  EXPECT_EQ(h.coarse->stencil_bytes() * 2, bytes_dbl);

  mg::CoarseVector<double> b(v.nsites(), v.ncols());
  h.coarse->apply(b, v);
  const double ref = std::sqrt(mg::cblas::norm2(a));
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) err += norm2(a[i] - b[i]);
  EXPECT_LT(std::sqrt(err) / ref, 1e-6);
}

TEST(MgSolver, FloatCoarseStorageKeepsConvergence) {
  // The gate behind MgParams::coarse_store_single: demoting the coarse
  // stencil must not move MG-GCR convergence.
  FermionFieldD rhs(geo4());
  fill_random(rhs.span(), 2550);
  const GcrParams gp{{.tol = 1e-9, .max_iterations = 200}, 16};

  mg::MgSolver<double> dbl(shared_gauge(), 0.124,
                           TimeBoundary::Antiperiodic, test_params(), gp);
  FermionFieldD x(geo4());
  blas::zero(x.span());
  const SolverResult r_dbl = dbl.solve(x.span(), rhs.span());

  mg::MgParams sp = test_params();
  sp.coarse_store_single = true;
  mg::MgSolver<double> sgl(shared_gauge(), 0.124,
                           TimeBoundary::Antiperiodic, sp, gp);
  blas::zero(x.span());
  const SolverResult r_sgl = sgl.solve(x.span(), rhs.span());

  ASSERT_TRUE(r_dbl.converged);
  ASSERT_TRUE(r_sgl.converged);
  EXPECT_LE(std::abs(r_sgl.iterations - r_dbl.iterations),
            std::max(1, r_dbl.iterations / 50));
  EXPECT_TRUE(sgl.preconditioner().hierarchy().coarse->single_storage());
  EXPECT_EQ(
      sgl.preconditioner().hierarchy().coarse->stencil_bytes() * 2,
      dbl.preconditioner().hierarchy().coarse->stencil_bytes());
}

TEST(Vcycle, BitIdenticalAcrossThreadCounts) {
  // The whole stack — setup RNG, relaxation, orthonormalization, Galerkin
  // assembly, V-cycle — promises bit-identical results for any pool size.
  FermionFieldD in(geo4());
  fill_random(in.span(), 2400);
  const auto vol = static_cast<std::size_t>(geo4().volume());

  auto run = [&](std::size_t threads) {
    ThreadPool::set_global_threads(threads);
    const WilsonOperator<double> m(shared_gauge(), 0.124);
    const mg::MgPreconditioner<double> v(m, test_params());
    std::vector<WilsonSpinorD> out(vol);
    v.apply(std::span<WilsonSpinorD>(out), in.span());
    return out;
  };
  const std::vector<WilsonSpinorD> a = run(1);
  const std::vector<WilsonSpinorD> b = run(3);
  ThreadPool::set_global_threads(0);  // restore the default pool

  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(WilsonSpinorD)),
            0);
}

TEST(MgSolver, ConvergesAtLightMassAndMatchesEoCg) {
  const double kappa = 0.124;  // light mass: the regime MG exists for
  FermionFieldD b(geo4());
  fill_random(b.span(), 2500);

  mg::MgSolver<double> solver(shared_gauge(), kappa,
                              TimeBoundary::Antiperiodic, test_params(),
                              {{.tol = 1e-9, .max_iterations = 200}, 16});
  FermionFieldD x(geo4());
  blas::zero(x.span());
  const SolverResult r = solver.solve(x.span(), b.span());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-9);
  EXPECT_LT(fine_residual(solver.op(), x.span(), b.span()), 1e-8);

  // Cross-check against the seed's eo-CG pipeline: same system, same
  // solution up to the tolerances.
  SolverConfig cfg;
  cfg.kappa = kappa;
  cfg.base = {.tol = 1e-9, .max_iterations = 20000};
  const auto ref = make_solver(shared_gauge(), SolverKind::EoCg, cfg);
  FermionFieldD y(geo4());
  blas::zero(y.span());
  ASSERT_TRUE(ref->solve(y.span(), b.span()).converged);
  double diff = 0.0, ref2 = 0.0;
  for (std::size_t i = 0; i < x.span().size(); ++i) {
    diff += norm2(x.span()[i] - y.span()[i]);
    ref2 += norm2(y.span()[i]);
  }
  EXPECT_LT(std::sqrt(diff / ref2), 1e-6);
}

TEST(MgSolver, AmortizesSetupAcrossSolves) {
  telemetry::set_enabled(true);
  telemetry::reset();
  mg::MgSolver<double> solver(shared_gauge(), 0.12,
                              TimeBoundary::Antiperiodic, test_params(),
                              {{.tol = 1e-8, .max_iterations = 100}, 16});
  EXPECT_EQ(telemetry::counter("mg.setup.vectors").value(),
            test_params().nvec);
  EXPECT_EQ(telemetry::counter("mg.setup.reuses").value(), 0);

  FermionFieldD b(geo4()), x(geo4());
  for (int s = 0; s < 3; ++s) {
    fill_random(b.span(), 2600 + static_cast<std::uint64_t>(s));
    blas::zero(x.span());
    EXPECT_TRUE(solver.solve(x.span(), b.span()).converged);
  }
  // Setup ran once; solves 2 and 3 reused it.
  EXPECT_EQ(telemetry::counter("mg.setup.vectors").value(),
            test_params().nvec);
  EXPECT_EQ(telemetry::counter("mg.setup.reuses").value(), 2);
  EXPECT_EQ(solver.solves(), 3);

  // The mg.* surface must show up in the JSON report.
  const std::string json = telemetry::report_json(false);
  for (const char* key :
       {"mg.setup.vectors", "mg.setup.relax_applies", "mg.setup.reuses",
        "mg.vcycle.count", "mg.fine.applies", "mg.coarse.applies",
        "mg.coarse.solve_iterations", "solver.mg_gcr.solves"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_GT(telemetry::counter("mg.vcycle.count").value(), 0);
  EXPECT_GT(telemetry::counter("mg.coarse.applies").value(), 0);
  telemetry::reset();
}

TEST(Factory, ParsesSolverNames) {
  EXPECT_EQ(parse_solver_kind("eo_cg"), SolverKind::EoCg);
  EXPECT_EQ(parse_solver_kind("cg"), SolverKind::EoCg);
  EXPECT_EQ(parse_solver_kind("mixed_cg"), SolverKind::MixedCg);
  EXPECT_EQ(parse_solver_kind("bicgstab"), SolverKind::BiCgStab);
  EXPECT_EQ(parse_solver_kind("gcr"), SolverKind::Gcr);
  EXPECT_EQ(parse_solver_kind("sap"), SolverKind::SapGcr);
  EXPECT_EQ(parse_solver_kind("mg"), SolverKind::Mg);
  EXPECT_THROW(parse_solver_kind("amg"), Error);
  for (const SolverKind k :
       {SolverKind::EoCg, SolverKind::MixedCg, SolverKind::BiCgStab,
        SolverKind::Gcr, SolverKind::SapGcr, SolverKind::Mg})
    EXPECT_EQ(parse_solver_kind(to_string(k)), k);
}

TEST(Factory, AllKindsSolveTheSameSystem) {
  FermionFieldD b(geo4());
  fill_random(b.span(), 2700);
  SolverConfig cfg;
  cfg.kappa = 0.12;
  cfg.base = {.tol = 1e-8, .max_iterations = 20000};
  cfg.sap = {{2, 2, 2, 2}, 2, 4};
  cfg.mg = test_params();
  const WilsonOperator<double> m(shared_gauge(), cfg.kappa);

  for (const SolverKind k :
       {SolverKind::EoCg, SolverKind::MixedCg, SolverKind::BiCgStab,
        SolverKind::Gcr, SolverKind::SapGcr, SolverKind::Mg}) {
    const auto solver = make_solver(shared_gauge(), k, cfg);
    EXPECT_EQ(solver->name(), to_string(k));
    FermionFieldD x(geo4());
    blas::zero(x.span());
    const SolverResult r = solver->solve(x.span(), b.span());
    EXPECT_TRUE(r.converged) << to_string(k);
    EXPECT_LT(fine_residual(m, x.span(), b.span()), 1e-7) << to_string(k);
  }
}

TEST(Factory, RejectsCloverForWilsonOnlyKinds) {
  SolverConfig cfg;
  cfg.csw = 1.0;
  for (const SolverKind k :
       {SolverKind::MixedCg, SolverKind::SapGcr, SolverKind::Mg})
    EXPECT_THROW(make_solver(shared_gauge(), k, cfg), Error);
}

}  // namespace
}  // namespace lqcd
