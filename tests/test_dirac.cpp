// Tests for the Dirac operators: Wilson dslash structure, gamma5
// hermiticity, free-field spectra, clover term algebra and the even-odd
// Schur complement.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/clover.hpp"
#include "dirac/eo.hpp"
#include "dirac/naive.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

GaugeFieldD thermalized_gauge(std::uint64_t seed) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < 5; ++i) hb.sweep();
  return u;
}

using CSpan = std::span<const WilsonSpinorD>;

CSpan cspan(const FermionFieldD& f) { return f.span(); }

TEST(FermionLinks, AntiperiodicFlipsLastTimeslice) {
  GaugeFieldD u(geo4());
  u.set_unit();
  const GaugeFieldD v = make_fermion_links(u, TimeBoundary::Antiperiodic);
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    const double want = geo4().coords(s)[3] == geo4().dim(3) - 1 ? -1.0
                                                                 : 1.0;
    EXPECT_DOUBLE_EQ(v(s, 3).m[0][0].re, want);
    EXPECT_DOUBLE_EQ(v(s, 0).m[0][0].re, 1.0);
  }
}

TEST(FermionLinks, PeriodicIsCopy) {
  const GaugeFieldD u = thermalized_gauge(40);
  const GaugeFieldD v = make_fermion_links(u, TimeBoundary::Periodic);
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) diff += norm2(u(s, mu) - v(s, mu));
  EXPECT_EQ(diff, 0.0);
}

TEST(WilsonOperator, RejectsBadKappa) {
  GaugeFieldD u(geo4());
  u.set_unit();
  EXPECT_THROW(WilsonOperator<double>(u, 0.3), Error);
  EXPECT_THROW(WilsonOperator<double>(u, 0.0), Error);
}

TEST(WilsonOperator, ConstantModeOnFreeField) {
  // Periodic free field: a spin-color constant is an eigenvector of M
  // with eigenvalue 1 - 8 kappa.
  GaugeFieldD u(geo4());
  u.set_unit();
  const double kappa = 0.11;
  WilsonOperator<double> m(u, kappa, TimeBoundary::Periodic);
  FermionFieldD in(geo4()), out(geo4());
  for (auto& psi : in.span()) {
    psi = WilsonSpinorD{};
    psi.s[1].c[2] = Cplxd(1.0, 0.5);
  }
  m.apply(out.span(), cspan(in));
  const double lam = 1.0 - 8.0 * kappa;
  double err = 0.0;
  for (std::size_t i = 0; i < out.span().size(); ++i) {
    WilsonSpinorD want = in.span()[i];
    want *= lam;
    err += norm2(out.span()[i] - want);
  }
  EXPECT_LT(err, 1e-22);
}

TEST(WilsonOperator, PlaneWaveDispersion) {
  // On the free field, M is diagonal in momentum space:
  //   M(p) = (1 - 2k sum_mu cos p_mu) + 2ik sum_mu sin(p_mu) gamma_mu.
  // Check the eigen-relation M psi_p = [...] psi_p for one nonzero p.
  const LatticeGeometry& geo = geo4();
  GaugeFieldD u(geo);
  u.set_unit();
  const double kappa = 0.12;
  WilsonOperator<double> m(u, kappa, TimeBoundary::Periodic);

  const double p[4] = {2.0 * M_PI / geo.dim(0), 0.0, 0.0,
                       2.0 * M_PI * 2 / geo.dim(3)};
  // Momentum eigen-spinor: constant chi modulated by exp(i p.x).
  WilsonSpinorD chi{};
  chi.s[0].c[0] = Cplxd(1.0);
  chi.s[2].c[1] = Cplxd(0.0, 1.0);

  FermionFieldD in(geo), out(geo), want(geo);
  for (std::int64_t s = 0; s < geo.volume(); ++s) {
    const Coord x = geo.coords(s);
    double phase = 0.0;
    for (int mu = 0; mu < Nd; ++mu) phase += p[mu] * x[mu];
    const Cplxd ph(std::cos(phase), std::sin(phase));
    WilsonSpinorD v = chi;
    v *= ph;
    in[s] = v;
  }
  m.apply(out.span(), cspan(in));

  // Build the expected momentum-space action on chi.
  double cos_sum = 0.0;
  WilsonSpinorD mchi = chi;
  mchi *= 0.0;
  for (int mu = 0; mu < Nd; ++mu) cos_sum += std::cos(p[mu]);
  WilsonSpinorD diag = chi;
  diag *= (1.0 - 2.0 * kappa * cos_sum);
  WilsonSpinorD gamma_part{};
  for (int mu = 0; mu < Nd; ++mu) {
    WilsonSpinorD g = apply_gamma(mu, chi);
    g *= Cplxd(0.0, 2.0 * kappa * std::sin(p[mu]));
    gamma_part += g;
  }
  const WilsonSpinorD mp = diag + gamma_part;
  for (std::int64_t s = 0; s < geo.volume(); ++s) {
    const Coord x = geo.coords(s);
    double phase = 0.0;
    for (int mu = 0; mu < Nd; ++mu) phase += p[mu] * x[mu];
    const Cplxd ph(std::cos(phase), std::sin(phase));
    WilsonSpinorD v = mp;
    v *= ph;
    want[s] = v;
  }
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo.volume(); ++s) {
    err += norm2(out[s] - want[s]);
    ref += norm2(want[s]);
  }
  EXPECT_LT(err / ref, 1e-24);
}

TEST(WilsonOperator, Gamma5Hermiticity) {
  const GaugeFieldD u = thermalized_gauge(41);
  WilsonOperator<double> m(u, 0.13);
  FermionFieldD phi(geo4()), psi(geo4()), mpsi(geo4()), tmp(geo4()),
      mdphi(geo4());
  fill_random(phi.span(), 50);
  fill_random(psi.span(), 51);
  m.apply(mpsi.span(), cspan(psi));
  // <phi, M psi> must equal <M^† phi, psi> with M^† = g5 M g5.
  m.apply_dagger(mdphi.span(), cspan(phi), tmp.span());
  const Cplxd a = blas::dot(cspan(phi), cspan(mpsi));
  const Cplxd b = blas::dot(cspan(mdphi), cspan(psi));
  EXPECT_NEAR(a.re, b.re, 1e-9 * std::abs(a.re) + 1e-9);
  EXPECT_NEAR(a.im, b.im, 1e-9 * std::abs(a.re) + 1e-9);
}

TEST(WilsonOperator, ParityDslashAssemblesFullDslash) {
  const GaugeFieldD u = thermalized_gauge(42);
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);
  FermionFieldD in(geo4()), full(geo4()), pieces(geo4());
  fill_random(in.span(), 52);
  dslash_full(full.span(), cspan(in), links);
  dslash_parity(pieces.span(), cspan(in), links, 0);
  dslash_parity(pieces.span(), cspan(in), links, 1);
  double err = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    err += norm2(full[s] - pieces[s]);
  EXPECT_EQ(err, 0.0);
}

TEST(WilsonOperator, LocalityOfDslash) {
  // A point source spreads exactly to nearest neighbors after one hop.
  GaugeFieldD u(geo4());
  u.set_unit();
  const GaugeFieldD links = make_fermion_links(u, TimeBoundary::Periodic);
  FermionFieldD in(geo4()), out(geo4());
  const Coord origin{0, 0, 0, 0};
  const std::int64_t src = geo4().cb_index(origin);
  in[src].s[0].c[0] = Cplxd(1.0);
  dslash_full(out.span(), cspan(in), links);
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    const Coord x = geo4().coords(s);
    int dist = 0;
    for (int mu = 0; mu < Nd; ++mu) {
      const int d = std::abs(x[mu] - origin[mu]);
      dist += std::min(d, geo4().dim(mu) - d);
    }
    if (dist == 1)
      EXPECT_GT(norm2(out[s]), 0.0) << "missing neighbor support";
    else
      EXPECT_EQ(norm2(out[s]), 0.0) << "dslash leaked beyond neighbors";
  }
}

TEST(NormalOperator, HermitianPositive) {
  const GaugeFieldD u = thermalized_gauge(43);
  WilsonOperator<double> m(u, 0.12);
  NormalOperator<double> mdm(m);
  EXPECT_TRUE(mdm.hermitian_positive());
  FermionFieldD x(geo4()), y(geo4()), ax(geo4()), ay(geo4());
  fill_random(x.span(), 53);
  fill_random(y.span(), 54);
  mdm.apply(ax.span(), cspan(x));
  mdm.apply(ay.span(), cspan(y));
  const Cplxd a = blas::dot(cspan(y), cspan(ax));
  const Cplxd b = blas::dot(cspan(ay), cspan(x));
  EXPECT_NEAR(a.re, b.re, 1e-8 * std::abs(a.re));
  EXPECT_NEAR(a.im, b.im, 1e-8 * std::abs(a.re) + 1e-8);
  // Positivity.
  EXPECT_GT(blas::re_dot(cspan(x), cspan(ax)), 0.0);
}

TEST(CloverFieldStrength, VanishesOnFreeField) {
  GaugeFieldD u(geo4());
  u.set_unit();
  const GaugeFieldD links = make_fermion_links(u, TimeBoundary::Periodic);
  for (int mu = 0; mu < Nd; ++mu)
    for (int nu = mu + 1; nu < Nd; ++nu)
      EXPECT_LT(norm2(clover_field_strength(links, 7, mu, nu)), 1e-28);
}

TEST(CloverFieldStrength, HermitianTraceless) {
  const GaugeFieldD u = thermalized_gauge(44);
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);
  const ColorMatrixD f = clover_field_strength(links, 11, 0, 3);
  EXPECT_LT(norm2(f - dagger(f)), 1e-26);
  EXPECT_NEAR(trace(f).re, 0.0, 1e-13);
  EXPECT_NEAR(trace(f).im, 0.0, 1e-13);
}

TEST(CloverFieldStrength, AntisymmetricInPlaneIndices) {
  const GaugeFieldD u = thermalized_gauge(45);
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);
  const ColorMatrixD a = clover_field_strength(links, 19, 1, 2);
  const ColorMatrixD b = clover_field_strength(links, 19, 2, 1);
  EXPECT_LT(norm2(a + b), 1e-24);
}

TEST(CloverTerm, IdentityOnFreeField) {
  GaugeFieldD u(geo4());
  u.set_unit();
  CloverTerm<double> a(u, {.kappa = 0.12, .csw = 1.0,
                           .bc = TimeBoundary::Periodic});
  FermionFieldD in(geo4()), out(geo4());
  fill_random(in.span(), 55);
  a.apply(out.span(), cspan(in), 0, geo4().volume());
  double err = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    err += norm2(out[s] - in[s]);
  EXPECT_LT(err, 1e-24);
}

TEST(CloverTerm, InverseIsExact) {
  const GaugeFieldD u = thermalized_gauge(46);
  CloverTerm<double> a(u, {.kappa = 0.13, .csw = 1.2});
  FermionFieldD in(geo4()), mid(geo4()), out(geo4());
  fill_random(in.span(), 56);
  a.apply(mid.span(), cspan(in), 0, geo4().volume());
  a.apply_inverse(out.span(), cspan(mid), 0, geo4().volume());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(out[s] - in[s]);
    ref += norm2(in[s]);
  }
  EXPECT_LT(err / ref, 1e-22);
}

TEST(CloverTerm, BlocksHermitian) {
  const GaugeFieldD u = thermalized_gauge(47);
  CloverTerm<double> a(u, {.kappa = 0.13, .csw = 1.0});
  for (std::int64_t s : {std::int64_t(0), std::int64_t(33),
                         std::int64_t(100)}) {
    for (int b = 0; b < 2; ++b) {
      const auto& blk = a.block(s, b);
      double herm_err = 0.0;
      for (int r = 0; r < 6; ++r)
        for (int c = 0; c < 6; ++c)
          herm_err += norm2(blk.m[r][c] - conj(blk.m[c][r]));
      EXPECT_LT(herm_err, 1e-24);
    }
  }
}

TEST(CloverWilson, ReducesToWilsonAtCswZero) {
  const GaugeFieldD u = thermalized_gauge(48);
  WilsonOperator<double> w(u, 0.12);
  CloverWilsonOperator<double> c(u, u, {.kappa = 0.12, .csw = 0.0});
  FermionFieldD in(geo4()), a(geo4()), b(geo4());
  fill_random(in.span(), 57);
  w.apply(a.span(), cspan(in));
  c.apply(b.span(), cspan(in));
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(a[s] - b[s]);
    ref += norm2(a[s]);
  }
  EXPECT_LT(err / ref, 1e-24);
}

TEST(CloverWilson, Gamma5Hermiticity) {
  const GaugeFieldD u = thermalized_gauge(49);
  CloverWilsonOperator<double> m(u, u, {.kappa = 0.13, .csw = 1.0});
  FermionFieldD phi(geo4()), psi(geo4()), mpsi(geo4()), tmp(geo4()),
      mdphi(geo4());
  fill_random(phi.span(), 58);
  fill_random(psi.span(), 59);
  m.apply(mpsi.span(), cspan(psi));
  apply_dagger_g5(m, mdphi.span(), cspan(phi), tmp.span());
  const Cplxd a = blas::dot(cspan(phi), cspan(mpsi));
  const Cplxd b = blas::dot(cspan(mdphi), cspan(psi));
  EXPECT_NEAR(a.re, b.re, 1e-9 * std::abs(a.re) + 1e-9);
  EXPECT_NEAR(a.im, b.im, 1e-9 * std::abs(a.re) + 1e-9);
}

TEST(SchurWilson, MatchesBlockElimination) {
  // Apply the Schur complement directly and via explicit block products
  // of the full operator on fields supported on one parity.
  const GaugeFieldD u = thermalized_gauge(60);
  const double kappa = 0.12;
  SchurWilsonOperator<double> shat(u, kappa);
  WilsonOperator<double> m(u, kappa);
  const std::int64_t hv = geo4().half_volume();

  FermionFieldD xo_full(geo4());
  fill_random(xo_full.span(), 61);
  // Zero the even block: x lives on odd sites only.
  for (std::int64_t s = 0; s < hv; ++s) xo_full[s] = WilsonSpinorD{};

  (void)m;
  // Direct evaluation of the definition: Mhat x_o = x_o - k^2 D_oe D_eo x_o.
  FermionFieldD deo(geo4()), doe(geo4());
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);
  dslash_parity(deo.span(), cspan(xo_full), links, 0);
  // zero odd block of deo view before next hop (only even part matters).
  for (std::int64_t s = hv; s < geo4().volume(); ++s)
    deo[s] = WilsonSpinorD{};
  dslash_parity(doe.span(), cspan(deo), links, 1);

  std::vector<WilsonSpinorD> got(static_cast<std::size_t>(hv));
  auto x_odd = cspan(xo_full).subspan(static_cast<std::size_t>(hv));
  shat.apply(std::span<WilsonSpinorD>(got),
             x_odd);
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < hv; ++s) {
    WilsonSpinorD w = doe[hv + s];
    w *= kappa * kappa;
    WilsonSpinorD expect = xo_full[hv + s];
    expect -= w;
    err += norm2(got[static_cast<std::size_t>(s)] - expect);
    ref += norm2(expect);
  }
  EXPECT_LT(err / ref, 1e-24);
}

TEST(SchurWilson, Gamma5HermiticityOnHalfLattice) {
  const GaugeFieldD u = thermalized_gauge(62);
  SchurWilsonOperator<double> shat(u, 0.13);
  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> phi(hv), psi(hv), mpsi(hv), mdphi(hv),
      tmp(hv);
  fill_random(std::span<WilsonSpinorD>(phi.data(), hv), 63);
  fill_random(std::span<WilsonSpinorD>(psi.data(), hv), 64);
  shat.apply(std::span<WilsonSpinorD>(mpsi.data(), hv),
             CSpan(psi.data(), hv));
  apply_dagger_g5<double>(shat, std::span<WilsonSpinorD>(mdphi.data(), hv),
                          CSpan(phi.data(), hv),
                          std::span<WilsonSpinorD>(tmp.data(), hv));
  const Cplxd a = blas::dot(CSpan(phi.data(), hv), CSpan(mpsi.data(), hv));
  const Cplxd b = blas::dot(CSpan(mdphi.data(), hv), CSpan(psi.data(), hv));
  EXPECT_NEAR(a.re, b.re, 1e-9 * std::abs(a.re) + 1e-9);
  EXPECT_NEAR(a.im, b.im, 1e-9 * std::abs(a.re) + 1e-9);
}

TEST(SchurClover, ReducesToSchurWilsonAtCswZero) {
  const GaugeFieldD u = thermalized_gauge(65);
  const double kappa = 0.12;
  SchurWilsonOperator<double> sw(u, kappa);
  SchurCloverOperator<double> sc(u, u, {.kappa = kappa, .csw = 0.0});
  const auto hv = static_cast<std::size_t>(geo4().half_volume());
  aligned_vector<WilsonSpinorD> x(hv), a(hv), b(hv);
  fill_random(std::span<WilsonSpinorD>(x.data(), hv), 66);
  sw.apply(std::span<WilsonSpinorD>(a.data(), hv), CSpan(x.data(), hv));
  sc.apply(std::span<WilsonSpinorD>(b.data(), hv), CSpan(x.data(), hv));
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < hv; ++i) {
    err += norm2(a[i] - b[i]);
    ref += norm2(a[i]);
  }
  EXPECT_LT(err / ref, 1e-22);
}

TEST(NaiveDslash, MatchesProjectedKernel) {
  // The optimized spin-projected dslash must agree with the dense
  // reference implementation to rounding.
  const GaugeFieldD u = thermalized_gauge(68);
  const GaugeFieldD links = make_fermion_links(u,
                                               TimeBoundary::Antiperiodic);
  FermionFieldD in(geo4()), fast(geo4()), slow(geo4());
  fill_random(in.span(), 69);
  dslash_full(fast.span(), cspan(in), links);
  dslash_full_naive(slow.span(), cspan(in), links);
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(fast[s] - slow[s]);
    ref += norm2(slow[s]);
  }
  EXPECT_LT(err / ref, 1e-26);
}

TEST(OperatorSizes, ReportedVectorSizes) {
  const GaugeFieldD u = thermalized_gauge(67);
  WilsonOperator<double> m(u, 0.12);
  SchurWilsonOperator<double> s(u, 0.12);
  EXPECT_EQ(m.vector_size(), geo4().volume());
  EXPECT_EQ(s.vector_size(), geo4().half_volume());
  EXPECT_GT(m.flops_per_apply(), 0.0);
  EXPECT_GT(s.flops_per_apply(), 0.0);
}

}  // namespace
}  // namespace lqcd
