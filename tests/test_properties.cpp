// Cross-cutting physics and model property sweeps (parameterized):
// monotonicity laws that tie several modules together.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "spectro/free_field.hpp"
#include "staggered/staggered.hpp"

namespace lqcd {
namespace {

TEST(PhysicsProperties, PlaquetteMonotoneInBeta) {
  // Stronger coupling (smaller beta) -> rougher field -> lower plaquette;
  // the map beta -> <P> must be monotone across the sweep.
  const LatticeGeometry geo({4, 4, 4, 4});
  double prev = -1.0;
  for (const double beta : {0.5, 2.0, 4.0, 5.7, 7.0, 10.0}) {
    GaugeFieldD u(geo);
    u.set_random(SiteRngFactory(321));
    Heatbath hb(u, {.beta = beta, .or_per_hb = 1, .seed = 322});
    double p = 0.0;
    for (int i = 0; i < 12; ++i) hb.sweep();
    for (int i = 0; i < 8; ++i) p += hb.sweep();
    p /= 8.0;
    EXPECT_GT(p, prev) << "beta " << beta;
    prev = p;
  }
}

TEST(PhysicsProperties, FreePionMassMonotoneInQuarkMass) {
  // Heavier quarks -> heavier pion, in both discretizations' free limits.
  double prev_w = 0.0, prev_s = 0.0;
  for (const double frac : {0.3, 0.5, 0.7}) {
    const double kappa = 0.125 * (1.0 - frac * 0.5);  // below kappa_c
    const double mw = 2.0 * free_quark_mass(kappa);
    EXPECT_GT(mw, prev_w);
    prev_w = mw;
    const double ms = 2.0 * staggered_free_quark_energy(frac);
    EXPECT_GT(ms, prev_s);
    prev_s = ms;
  }
}

TEST(PhysicsProperties, FreePionCorrelatorOrderedByMass) {
  // At every t > 0, the heavier-quark correlator decays faster.
  const Coord dims{4, 4, 4, 12};
  const auto light = free_pion_correlator(dims, 0.120);
  const auto heavy = free_pion_correlator(dims, 0.100);
  for (int t = 1; t <= 6; ++t) {
    const double rl = light[static_cast<std::size_t>(t)] / light[0];
    const double rh = heavy[static_cast<std::size_t>(t)] / heavy[0];
    EXPECT_GT(rl, rh) << t;
  }
}

class ModelMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ModelMonotonicity, DslashTimeGrowsWithLocalVolume) {
  const int l = GetParam();
  PerfModelOptions opt;
  const MachineModel m = blue_gene_q();
  const DslashCost small = model_dslash({l, l, l, l}, {2, 2, 2, 2}, m, opt);
  const DslashCost big =
      model_dslash({2 * l, l, l, l}, {2, 2, 2, 2}, m, opt);
  EXPECT_GT(big.t_compute, small.t_compute);
  EXPECT_GT(big.comm_bytes, small.comm_bytes);
  // Comm share shrinks with local volume (surface/volume).
  EXPECT_LT(big.t_comm / big.t_compute, small.t_comm / small.t_compute);
}

TEST_P(ModelMonotonicity, FasterLinksReduceCommTime) {
  const int l = GetParam();
  PerfModelOptions opt;
  MachineModel slow = generic_cluster();
  MachineModel fast = slow;
  fast.link_bw_gbs *= 4.0;
  const DslashCost a = model_dslash({l, l, l, l}, {2, 2, 2, 2}, slow, opt);
  const DslashCost b = model_dslash({l, l, l, l}, {2, 2, 2, 2}, fast, opt);
  EXPECT_GT(a.t_comm, b.t_comm);
  EXPECT_DOUBLE_EQ(a.t_compute, b.t_compute);
}

INSTANTIATE_TEST_SUITE_P(LocalSizes, ModelMonotonicity,
                         ::testing::Values(4, 6, 8, 12));

TEST(PhysicsProperties, StrongScalingEfficiencyBelowWeakScaling) {
  // At matched node counts, strong scaling (shrinking local volume)
  // cannot beat weak scaling (fixed local volume) in efficiency.
  PerfModelOptions opt;
  const MachineModel m = blue_gene_q();
  const std::vector<int> nodes = {16, 256, 4096};
  const auto strong = strong_scaling({32, 32, 32, 64}, m, opt, nodes);
  const auto weak = weak_scaling({16, 16, 16, 16}, m, opt, nodes);
  ASSERT_EQ(strong.size(), weak.size());
  for (std::size_t i = 0; i < strong.size(); ++i)
    EXPECT_LE(strong[i].efficiency, weak[i].efficiency + 1e-9) << i;
}

}  // namespace
}  // namespace lqcd
