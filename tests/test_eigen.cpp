// Tests for the Lanczos eigensolver and low-mode deflation.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/normal.hpp"
#include "dirac/twisted.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/deflation.hpp"
#include "solver/lanczos.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(990));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 991});
    for (int i = 0; i < 5; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

TEST(Lanczos, EigenpairsSatisfyEigenEquation) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  LanczosParams lp;
  lp.krylov_dim = 150;
  lp.wanted = 3;
  const LanczosResult r = lanczos(a, lp);
  ASSERT_EQ(r.pairs.size(), 3u);
  const std::size_t n = static_cast<std::size_t>(a.vector_size());
  for (const auto& pair : r.pairs) {
    EXPECT_GT(pair.value, 0.0);
    // Residual reported by the solver must match a direct check.
    aligned_vector<WilsonSpinorD> av(n);
    a.apply(std::span<WilsonSpinorD>(av.data(), n),
            std::span<const WilsonSpinorD>(pair.vector.data(), n));
    blas::axpy(-pair.value,
               std::span<const WilsonSpinorD>(pair.vector.data(), n),
               std::span<WilsonSpinorD>(av.data(), n));
    const double res = std::sqrt(
        blas::norm2(std::span<const WilsonSpinorD>(av.data(), n)));
    EXPECT_NEAR(res, pair.residual, 1e-8 + 0.05 * pair.residual);
    // The extremal pair should be well converged at this Krylov size.
  }
  EXPECT_LT(r.pairs.front().residual, 1e-5);
  // Sorted ascending.
  EXPECT_LE(r.pairs[0].value, r.pairs[1].value);
  EXPECT_LE(r.pairs[1].value, r.pairs[2].value);
}

TEST(Lanczos, RayleighQuotientsInsideBounds) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  const auto [lo, hi] = spectral_bounds(a, 50);
  EXPECT_GT(lo, 0.0);
  EXPECT_GT(hi, lo);
  const std::size_t n = static_cast<std::size_t>(a.vector_size());
  FermionFieldD x(geo4()), ax(geo4());
  for (std::uint64_t s = 0; s < 5; ++s) {
    fill_random(x.span(), 992 + s);
    a.apply(ax.span(), x.span());
    const double rq = blas::re_dot(x.span(), ax.span()) /
                      blas::norm2(x.span());
    EXPECT_GE(rq, lo - 1e-6);
    EXPECT_LE(rq, hi + 1e-2 * hi);
  }
  (void)n;
}

TEST(Lanczos, TwistShiftsSpectrumExactly) {
  // lambda_min(M^†M + mu^2) = lambda_min(M^†M) + mu^2 — the twisted
  // normal identity measured spectrally.
  WilsonOperator<double> m(gauge(), 0.124);
  NormalOperator<double> a(m);
  TwistedMassOperator<double> tm(gauge(), 0.124, 0.3);
  TwistedNormalOperator<double> at(tm);
  LanczosParams lp;
  lp.krylov_dim = 60;
  lp.wanted = 1;
  const double l0 = lanczos(a, lp).pairs.front().value;
  const double l1 = lanczos(at, lp).pairs.front().value;
  EXPECT_NEAR(l1, l0 + 0.09, 1e-5 + 1e-3 * l1);
}

TEST(Lanczos, LargestModeMatchesPowerIteration) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  LanczosParams lp;
  lp.krylov_dim = 40;
  lp.wanted = 1;
  lp.smallest = false;
  const double lmax = lanczos(a, lp).pairs.back().value;

  // Crude power iteration for comparison.
  FermionFieldD v(geo4()), av(geo4());
  fill_random(v.span(), 993);
  double lam = 0.0;
  for (int it = 0; it < 60; ++it) {
    a.apply(av.span(), v.span());
    lam = std::sqrt(blas::norm2(av.span()) / blas::norm2(v.span()));
    const double inv = 1.0 / std::sqrt(blas::norm2(av.span()));
    for (std::int64_t s = 0; s < geo4().volume(); ++s) {
      WilsonSpinorD w = av[s];
      w *= inv;
      v[s] = w;
    }
  }
  EXPECT_NEAR(lmax, lam, 1e-2 * lam);
}

TEST(Lanczos, Validation) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  LanczosParams lp;
  lp.krylov_dim = 1;
  EXPECT_THROW(lanczos(a, lp), Error);
  lp.krylov_dim = 10;
  lp.wanted = 11;
  EXPECT_THROW(lanczos(a, lp), Error);
  EXPECT_THROW(lanczos(m, LanczosParams{}), Error);  // non-hermitian
}

TEST(Deflation, ReducesIterationsNearKappaC) {
  WilsonOperator<double> m(gauge(), 0.124);
  NormalOperator<double> a(m);

  LanczosParams lp;
  lp.krylov_dim = 200;
  lp.wanted = 6;
  Deflator deflator(lanczos(a, lp).pairs, 1e-3);
  ASSERT_GE(deflator.size(), 4u);

  FermionFieldD b(geo4()), x_plain(geo4()), x_defl(geo4());
  fill_random(b.span(), 994);
  SolverParams p{.tol = 1e-9, .max_iterations = 8000};
  const SolverResult plain = cg_solve<double>(a, x_plain.span(), b.span(),
                                              p);
  const SolverResult defl =
      deflated_cg_solve(a, deflator, x_defl.span(), b.span(), p);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(defl.converged);
  EXPECT_LT(defl.iterations, plain.iterations);

  // Same solution.
  double diff = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    diff += norm2(x_defl[s] - x_plain[s]);
    ref += norm2(x_plain[s]);
  }
  EXPECT_LT(std::sqrt(diff / ref), 1e-6);
}

TEST(Deflation, FiltersLooseVectors) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  LanczosParams lp;
  lp.krylov_dim = 20;  // too small: higher pairs are unconverged
  lp.wanted = 10;
  auto pairs = lanczos(a, lp).pairs;
  const std::size_t total = pairs.size();
  Deflator strict(std::move(pairs), 1e-10);
  EXPECT_LT(strict.size(), total);
}

TEST(Deflation, SplitReconstructsRhs) {
  WilsonOperator<double> m(gauge(), 0.12);
  NormalOperator<double> a(m);
  LanczosParams lp;
  lp.krylov_dim = 150;
  lp.wanted = 4;
  Deflator deflator(lanczos(a, lp).pairs, 1e-3);
  ASSERT_GE(deflator.size(), 2u);

  const auto n = static_cast<std::size_t>(a.vector_size());
  FermionFieldD b(geo4());
  fill_random(b.span(), 995);
  aligned_vector<WilsonSpinorD> xlow(n), bperp(n), alow(n);
  deflator.split(std::span<WilsonSpinorD>(xlow.data(), n),
                 std::span<WilsonSpinorD>(bperp.data(), n), b.span());
  // A x_low + b_perp == b (x_low solves the low-mode block exactly).
  a.apply(std::span<WilsonSpinorD>(alow.data(), n),
          std::span<const WilsonSpinorD>(xlow.data(), n));
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err += norm2(alow[i] + bperp[i] - b.span()[i]);
    ref += norm2(b.span()[i]);
  }
  EXPECT_LT(std::sqrt(err / ref), 1e-3);
}

}  // namespace
}  // namespace lqcd
