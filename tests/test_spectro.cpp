// Tests for spectroscopy: sources, propagator solves (validated against
// the Dirac equation), meson/baryon contractions, effective masses and
// the exact free-field reference — the end-to-end "origin of mass" check.
#include <gtest/gtest.h>

#include <cmath>

#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "spectro/correlator.hpp"
#include "spectro/effective_mass.hpp"
#include "spectro/free_field.hpp"
#include "spectro/propagator.hpp"
#include "spectro/source.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo438() {
  static LatticeGeometry geo({4, 4, 4, 8});
  return geo;
}

TEST(Source, PointSourceNormalization) {
  FermionFieldD b(geo438());
  make_point_source(b, {1, 2, 3, 0}, 2, 1);
  EXPECT_DOUBLE_EQ(blas::norm2(b.span()), 1.0);
  const std::int64_t cb = geo438().cb_index({1, 2, 3, 0});
  EXPECT_DOUBLE_EQ(b[cb].s[2].c[1].re, 1.0);
}

TEST(Source, PointSourceValidation) {
  FermionFieldD b(geo438());
  EXPECT_THROW(make_point_source(b, {0, 0, 0, 0}, 4, 0), Error);
  EXPECT_THROW(make_point_source(b, {0, 0, 0, 9}, 0, 0), Error);
}

TEST(Source, WallSourceCoversTimeslice) {
  FermionFieldD b(geo438());
  make_wall_source(b, 3, 0, 0);
  const double v3 = 4.0 * 4.0 * 4.0;
  EXPECT_DOUBLE_EQ(blas::norm2(b.span()), v3);
  for (std::int64_t s = 0; s < geo438().volume(); ++s) {
    const double want = geo438().coords(s)[3] == 3 ? 1.0 : 0.0;
    EXPECT_DOUBLE_EQ(norm2(b[s]), want);
  }
}

TEST(Source, SmearingSpreadsSupportAndNormalizes) {
  GaugeFieldD u(geo438());
  u.set_unit();
  FermionFieldD b(geo438());
  make_point_source(b, {0, 0, 0, 0}, 0, 0);
  smear_source(b, u, 0.5, 3);
  EXPECT_NEAR(blas::norm2(b.span()), 1.0, 1e-12);
  // Support must have spread off the origin but stay on timeslice 0
  // (spatial hops only).
  int support = 0;
  for (std::int64_t s = 0; s < geo438().volume(); ++s) {
    if (norm2(b[s]) > 1e-20) {
      ++support;
      EXPECT_EQ(geo438().coords(s)[3], 0);
    }
  }
  EXPECT_GT(support, 1);
}

TEST(Propagator, ColumnsSatisfyDiracEquation) {
  GaugeFieldD u(geo438());
  u.set_random(SiteRngFactory(500));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = 501});
  for (int i = 0; i < 4; ++i) hb.sweep();

  PropagatorParams params;
  params.kappa = 0.115;
  params.solver.tol = 1e-10;
  Propagator prop(geo438());
  const PropagatorStats stats =
      compute_point_propagator(prop, u, params, {0, 0, 0, 0});
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.total_iterations, 0);
  EXPECT_LT(stats.worst_residual, 1e-8);

  // Verify M S = delta for two representative columns with the full
  // (unpreconditioned) operator.
  WilsonOperator<double> m(u, params.kappa, params.bc);
  FermionFieldD b(geo438()), ms(geo438());
  for (const auto& sc : {std::pair<int, int>{0, 0}, {3, 2}}) {
    make_point_source(b, {0, 0, 0, 0}, sc.first, sc.second);
    m.apply(ms.span(), prop.column(sc.first, sc.second).span());
    double err = 0.0;
    for (std::int64_t s = 0; s < geo438().volume(); ++s)
      err += norm2(ms[s] - b[s]);
    EXPECT_LT(std::sqrt(err), 1e-8);
  }
}

TEST(Propagator, CloverPathAlsoSolves) {
  GaugeFieldD u(geo438());
  u.set_random(SiteRngFactory(502));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = 503});
  for (int i = 0; i < 3; ++i) hb.sweep();
  PropagatorParams params;
  params.kappa = 0.11;
  params.csw = 1.0;
  Propagator prop(geo438());
  const PropagatorStats stats =
      compute_point_propagator(prop, u, params, {0, 0, 0, 0});
  EXPECT_TRUE(stats.converged);
}

class FreeFieldSpectroscopy : public ::testing::Test {
 protected:
  static const Propagator& free_prop() {
    static Propagator prop = [] {
      Propagator p(geo438());
      GaugeFieldD u(geo438());
      u.set_unit();
      PropagatorParams params;
      params.kappa = 0.110;
      params.solver.tol = 1e-12;
      compute_point_propagator(p, u, params, {0, 0, 0, 0});
      return p;
    }();
    return prop;
  }
  static constexpr double kKappa = 0.110;
};

TEST_F(FreeFieldSpectroscopy, PionMatchesAnalyticMomentumSum) {
  // The strongest end-to-end check in the suite: the measured pion
  // correlator must match the exact finite-volume momentum sum.
  const Correlator c = pion_correlator(free_prop(), 0);
  const std::vector<double> ref =
      free_pion_correlator(geo438().dims(), kKappa);
  ASSERT_EQ(c.c.size(), ref.size());
  for (std::size_t t = 0; t < ref.size(); ++t) {
    EXPECT_NEAR(c.c[t] / ref[t], 1.0, 1e-6) << "t=" << t;
    EXPECT_LT(std::abs(c.c_imag[t]), 1e-10 * std::abs(c.c[t]) + 1e-14);
  }
}

TEST_F(FreeFieldSpectroscopy, PionPositiveAndSymmetric) {
  const Correlator c = pion_correlator(free_prop(), 0);
  const int lt = geo438().dim(3);
  for (int t = 0; t < lt; ++t) EXPECT_GT(c.c[static_cast<std::size_t>(t)],
                                         0.0);
  for (int t = 1; t < lt; ++t)
    EXPECT_NEAR(c.c[static_cast<std::size_t>(t)] /
                    c.c[static_cast<std::size_t>(lt - t)],
                1.0, 1e-8);
}

TEST_F(FreeFieldSpectroscopy, PionEffectiveMassNearTwiceQuarkMass) {
  const Correlator c = pion_correlator(free_prop(), 0);
  const auto meff = effective_mass_cosh(c.c);
  const PlateauEstimate est = plateau_mass(meff, 2, 3);
  ASSERT_GT(est.points, 0);
  // Free pion: two non-interacting quarks. Finite-volume effects on a
  // 4^3 box are sizeable, hence the loose window.
  const double mq = free_quark_mass(kKappa);
  EXPECT_NEAR(est.mass, 2.0 * mq, 0.4);
}

TEST_F(FreeFieldSpectroscopy, RhoDegenerateWithPionAtFreeField) {
  // Without interactions, pion and rho are degenerate up to cutoff
  // effects: correlators agree at the few-percent level at moderate t.
  const Correlator cp = pion_correlator(free_prop(), 0);
  const Correlator cr = rho_correlator(free_prop(), 0);
  const auto mp = effective_mass_cosh(cp.c);
  const auto mr = effective_mass_cosh(cr.c);
  const auto ep = plateau_mass(mp, 2, 3);
  const auto er = plateau_mass(mr, 2, 3);
  ASSERT_GT(ep.points, 0);
  ASSERT_GT(er.points, 0);
  EXPECT_NEAR(er.mass / ep.mass, 1.0, 0.2);
}

TEST_F(FreeFieldSpectroscopy, NucleonHeavierThanPion) {
  const Correlator cn = nucleon_correlator(free_prop(), 0);
  const Correlator cp = pion_correlator(free_prop(), 0);
  // Forward nucleon decays ~ 3 m_q vs pion ~ 2 m_q: steeper falloff.
  const double n_ratio = std::abs(cn.c[1]) / std::abs(cn.c[2]);
  const double p_ratio = cp.c[1] / cp.c[2];
  EXPECT_GT(n_ratio, p_ratio);
  // And its magnitude decays over the first few slices.
  EXPECT_GT(std::abs(cn.c[1]), std::abs(cn.c[3]));
}

TEST(Correlator, SourceTimeOffsetRotatesCorrelator) {
  GaugeFieldD u(geo438());
  u.set_unit();
  PropagatorParams params;
  params.kappa = 0.11;
  Propagator p0(geo438()), p2(geo438());
  compute_point_propagator(p0, u, params, {0, 0, 0, 0});
  compute_point_propagator(p2, u, params, {0, 0, 0, 2});
  const Correlator c0 = pion_correlator(p0, 0);
  const Correlator c2 = pion_correlator(p2, 2);
  for (std::size_t t = 0; t < c0.c.size(); ++t)
    EXPECT_NEAR(c2.c[t] / c0.c[t], 1.0, 1e-8) << t;
}

TEST(Correlator, RejectsBadSourceTime) {
  Propagator p(geo438());
  EXPECT_THROW(pion_correlator(p, 8), Error);
  EXPECT_THROW(nucleon_correlator(p, -1), Error);
}

TEST(EffectiveMass, LogRecoversPureExponential) {
  const double m = 0.7;
  std::vector<double> c(10);
  for (std::size_t t = 0; t < c.size(); ++t)
    c[t] = 3.0 * std::exp(-m * static_cast<double>(t));
  const auto meff = effective_mass_log(c);
  for (double v : meff) EXPECT_NEAR(v, m, 1e-12);
}

TEST(EffectiveMass, CoshRecoversSymmetricCorrelator) {
  const double m = 0.55;
  const int lt = 16;
  std::vector<double> c(static_cast<std::size_t>(lt));
  for (int t = 0; t < lt; ++t)
    c[static_cast<std::size_t>(t)] = std::cosh(m * (t - lt / 2.0));
  const auto meff = effective_mass_cosh(c);
  for (int t = 1; t < lt - 2; ++t)
    if (!std::isnan(meff[static_cast<std::size_t>(t)]))
      EXPECT_NEAR(meff[static_cast<std::size_t>(t)], m, 1e-9) << t;
}

TEST(EffectiveMass, NanOnNonPositiveRatios) {
  const std::vector<double> c = {1.0, -0.5, 0.25};
  const auto meff = effective_mass_log(c);
  EXPECT_TRUE(std::isnan(meff[0]));
  EXPECT_TRUE(std::isnan(meff[1]));
}

TEST(EffectiveMass, PlateauAveragesAndSkipsNan) {
  std::vector<double> m = {0.9, 0.52, 0.50,
                           std::numeric_limits<double>::quiet_NaN(), 0.48};
  const PlateauEstimate est = plateau_mass(m, 1, 4);
  EXPECT_EQ(est.points, 3);
  EXPECT_NEAR(est.mass, 0.5, 1e-12);
  EXPECT_NEAR(est.spread, 0.04, 1e-12);
}

TEST(EffectiveMass, FoldCorrelator) {
  const std::vector<double> c = {10.0, 5.0, 2.0, 5.5};
  const auto f = fold_correlator(c);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 10.0);
  EXPECT_DOUBLE_EQ(f[1], 5.25);
  EXPECT_DOUBLE_EQ(f[2], 2.0);
  EXPECT_THROW(fold_correlator({1.0, 2.0, 3.0}), Error);
}

TEST_F(FreeFieldSpectroscopy, ZeroMomentumProjectionMatchesPlain) {
  const Correlator c0 = pion_correlator(free_prop(), 0);
  const Correlator cp = pion_correlator_momentum(free_prop(), 0,
                                                 {0, 0, 0});
  ASSERT_EQ(c0.c.size(), cp.c.size());
  for (std::size_t t = 0; t < c0.c.size(); ++t)
    EXPECT_NEAR(cp.c[t] / c0.c[t], 1.0, 1e-12) << t;
}

TEST_F(FreeFieldSpectroscopy, DispersionEnergyRisesWithMomentum) {
  // E(p) from the cosh effective mass must grow with |p| — the lattice
  // dispersion relation, measured through the momentum projection.
  const Correlator c0 = pion_correlator_momentum(free_prop(), 0,
                                                 {0, 0, 0});
  const Correlator c1 = pion_correlator_momentum(free_prop(), 0,
                                                 {1, 0, 0});
  const auto e0 = plateau_mass(effective_mass_cosh(c0.c), 2, 3);
  const auto e1 = plateau_mass(effective_mass_cosh(c1.c), 2, 3);
  ASSERT_GT(e0.points, 0);
  ASSERT_GT(e1.points, 0);
  EXPECT_GT(e1.mass, e0.mass);
  // Loose continuum-dispersion check: E(p)^2 - E(0)^2 ~ p^2 within the
  // heavy-quark cutoff effects of this coarse box.
  const double p2 = std::pow(2.0 * M_PI / 4.0, 2);
  const double lhs = e1.mass * e1.mass - e0.mass * e0.mass;
  EXPECT_GT(lhs, 0.2 * p2);
  EXPECT_LT(lhs, 2.5 * p2);
}

TEST_F(FreeFieldSpectroscopy, MomentumCorrelatorSymmetricUnderPFlip) {
  // Parity: C(p, t) = C(-p, t) on a parity-even source.
  const Correlator cp = pion_correlator_momentum(free_prop(), 0,
                                                 {1, 0, 0});
  const Correlator cm = pion_correlator_momentum(free_prop(), 0,
                                                 {-1, 0, 0});
  for (std::size_t t = 0; t < cp.c.size(); ++t)
    EXPECT_NEAR(cp.c[t], cm.c[t], 1e-9 * std::abs(cp.c[t]) + 1e-14);
}

TEST(FreeField, QuarkMassMonotoneInBareMass) {
  EXPECT_GT(free_quark_mass(0.10), free_quark_mass(0.12));
  EXPECT_NEAR(free_quark_mass(1.0 / 8.0), 0.0, 1e-12);
  EXPECT_THROW(free_quark_mass(0.24), Error);
}

TEST(FreeField, AnalyticCorrelatorSymmetricPositive) {
  const auto c = free_pion_correlator({4, 4, 4, 8}, 0.115);
  ASSERT_EQ(c.size(), 8u);
  for (double v : c) EXPECT_GT(v, 0.0);
  for (int t = 1; t < 8; ++t)
    EXPECT_NEAR(c[static_cast<std::size_t>(t)] /
                    c[static_cast<std::size_t>(8 - t)],
                1.0, 1e-10);
}

}  // namespace
}  // namespace lqcd
