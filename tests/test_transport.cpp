// Tests for lqcd::transport — the frame codec, the three backends
// behind one SPMD thread harness, fault-schedule parity across
// backends, and the death/budget error contract the campaign layers
// key on (TransientError = peer gone / timed out, FatalError = retry
// budget exhausted). The socket backend runs over real loopback TCP
// built by the same listen_loopback()/rendezvous_serve() pair
// lqcd_launch uses; the shm backend over a real mmapped segment file.
// The whole file runs under the ASan+UBSan config.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "comm/fault.hpp"
#include "comm/halo.hpp"
#include "comm/process_grid.hpp"
#include "comm/transport/frame.hpp"
#include "comm/transport/inprocess.hpp"
#include "comm/transport/rank_halo.hpp"
#include "comm/transport/shm.hpp"
#include "comm/transport/socket.hpp"
#include "comm/transport/transport.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

namespace tr = transport;

std::vector<std::byte> make_payload(std::size_t n, unsigned salt = 0) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::byte>((i * 31u + 7u + salt) & 0xFF);
  return p;
}

std::uint64_t ctrl_tag(std::uint64_t seq) {
  return tr::make_seq_tag(tr::TagKind::kCtrl, seq);
}

// --- frame codec ------------------------------------------------------

TEST(TransportFrame, HeaderRoundTrip) {
  tr::FrameHeader h;
  h.src = 3;
  h.dst = 11;
  h.flags = tr::kFlagDropMarker;
  h.tag = tr::make_halo_tag(123456789, 2, -1);
  h.payload_len = 77;
  h.payload_crc = 0xdeadbeef;
  std::byte wire[tr::kFrameHeaderBytes];
  tr::encode_header(wire, h);
  const tr::FrameHeader d = tr::decode_header(wire);
  EXPECT_EQ(d.src, h.src);
  EXPECT_EQ(d.dst, h.dst);
  EXPECT_EQ(d.flags, h.flags);
  EXPECT_EQ(d.tag, h.tag);
  EXPECT_EQ(d.payload_len, h.payload_len);
  EXPECT_EQ(d.payload_crc, h.payload_crc);
}

TEST(TransportFrame, BadMagicThrows) {
  std::byte wire[tr::kFrameHeaderBytes] = {};
  tr::FrameHeader h;
  tr::encode_header(wire, h);
  wire[1] = std::byte{0x00};  // clobber the magic
  EXPECT_THROW((void)tr::decode_header(wire), Error);
}

TEST(TransportFrame, AbsurdPayloadLengthThrows) {
  tr::FrameHeader h;
  h.payload_len = tr::kMaxFramePayload + 1;
  std::byte wire[tr::kFrameHeaderBytes];
  tr::encode_header(wire, h);
  EXPECT_THROW((void)tr::decode_header(wire), Error);
}

TEST(TransportFrame, HaloTagRoundTrip) {
  const std::uint64_t tag = tr::make_halo_tag(0xABCDEF012345ull, 3, +1);
  EXPECT_EQ(tr::tag_kind(tag), tr::TagKind::kHalo);
  EXPECT_EQ(tr::halo_epoch(tag), 0xABCDEF012345ull);
  EXPECT_EQ(tr::halo_mu(tag), 3);
  EXPECT_EQ(tr::halo_dir(tag), +1);
  const std::uint64_t neg = tr::make_halo_tag(7, 0, -1);
  EXPECT_EQ(tr::halo_mu(neg), 0);
  EXPECT_EQ(tr::halo_dir(neg), -1);
}

TEST(TransportFrame, SeqTagRoundTrip) {
  const std::uint64_t tag = tr::make_seq_tag(tr::TagKind::kResult, 42);
  EXPECT_EQ(tr::tag_kind(tag), tr::TagKind::kResult);
  EXPECT_EQ(tr::seq_of(tag), 42u);
}

// Feed a multi-frame stream one byte at a time: every frame must come
// out intact, regardless of how the wire tears the chunks.
TEST(TransportFrame, TornStreamReassembles) {
  const std::vector<std::size_t> sizes{0, 1, 333, 4096};
  std::vector<std::byte> stream;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::vector<std::byte> p = make_payload(sizes[i], 0x40u + i);
    tr::FrameHeader h;
    h.src = static_cast<std::uint32_t>(i);
    h.dst = 1;
    h.tag = ctrl_tag(i);
    h.payload_len = static_cast<std::uint32_t>(p.size());
    h.payload_crc = crc32(p.data(), p.size());
    std::byte hdr[tr::kFrameHeaderBytes];
    tr::encode_header(hdr, h);
    stream.insert(stream.end(), hdr, hdr + tr::kFrameHeaderBytes);
    stream.insert(stream.end(), p.begin(), p.end());
  }
  tr::FrameReader reader;
  std::size_t got = 0;
  tr::FrameHeader h;
  std::vector<std::byte> payload;
  for (const std::byte b : stream) {
    reader.feed({&b, 1});
    while (reader.next(h, payload)) {
      ASSERT_LT(got, sizes.size());
      EXPECT_EQ(h.src, got);
      EXPECT_EQ(h.tag, ctrl_tag(got));
      EXPECT_EQ(payload, make_payload(sizes[got], 0x40u + got));
      ++got;
    }
  }
  EXPECT_EQ(got, sizes.size());
  EXPECT_EQ(reader.buffered(), 0u);
}

// A short frame (peer died mid-write) never parses, and the residue is
// visible — the EOF handler's torn-frame signal.
TEST(TransportFrame, ShortFrameLeavesResidue) {
  const std::vector<std::byte> p = make_payload(256);
  tr::FrameHeader h;
  h.payload_len = static_cast<std::uint32_t>(p.size());
  std::byte hdr[tr::kFrameHeaderBytes];
  tr::encode_header(hdr, h);
  tr::FrameReader reader;
  reader.feed({hdr, tr::kFrameHeaderBytes});
  reader.feed({p.data(), 100});  // stream ends mid-payload
  tr::FrameHeader out;
  std::vector<std::byte> payload;
  EXPECT_FALSE(reader.next(out, payload));
  EXPECT_EQ(reader.buffered(), tr::kFrameHeaderBytes + 100);
  // A bare partial header is equally torn.
  tr::FrameReader r2;
  r2.feed({hdr, 10});
  EXPECT_FALSE(r2.next(out, payload));
  EXPECT_EQ(r2.buffered(), 10u);
}

// --- SPMD thread harness ---------------------------------------------

using MakeTransport =
    std::function<std::unique_ptr<tr::Transport>(int rank)>;
using RankBody = std::function<void(int rank, tr::Transport& tp)>;

/// Run `body` on n rank-threads, each with its own endpoint built
/// *inside* the thread (the socket mesh handshake needs the
/// constructors to overlap). First exception wins and is rethrown.
void run_spmd(int n, const MakeTransport& make, const RankBody& body) {
  std::vector<std::thread> ts;
  std::vector<std::exception_ptr> errs(static_cast<std::size_t>(n));
  ts.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    ts.emplace_back([&, r] {
      try {
        std::unique_ptr<tr::Transport> tp = make(r);
        body(r, *tp);
      } catch (...) {
        errs[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  for (auto& t : ts) t.join();
  for (const std::exception_ptr& e : errs)
    if (e) std::rethrow_exception(e);
}

MakeTransport inprocess_world(int n) {
  auto eps = std::make_shared<
      std::vector<std::unique_ptr<tr::Transport>>>(
      tr::make_inprocess_group(n));
  return [eps](int r) {
    return std::move((*eps)[static_cast<std::size_t>(r)]);
  };
}

/// Real loopback TCP world: the test process runs the same rendezvous
/// lqcd_launch serves, and each rank thread builds its mesh endpoint.
class SocketWorld {
 public:
  explicit SocketWorld(int n) : n_(n) {
    fd_ = tr::listen_loopback(port_);
    serve_ = std::thread([this] { tr::rendezvous_serve(fd_, n_); });
  }
  ~SocketWorld() {
    serve_.join();
    close(fd_);
  }
  /// A positive `recv_timeout_ms` applies to `timeout_rank` only, so the
  /// rank under test times out while its peers wait indefinitely.
  [[nodiscard]] MakeTransport make(int recv_timeout_ms = -1,
                                   int timeout_rank = 0) const {
    const int port = port_;
    const int n = n_;
    return [port, n, recv_timeout_ms, timeout_rank](int r) {
      auto tp = std::make_unique<tr::SocketTransport>(r, n, "127.0.0.1",
                                                      port);
      if (recv_timeout_ms > 0 && r == timeout_rank)
        tp->set_recv_timeout_ms(recv_timeout_ms);
      return tp;
    };
  }

 private:
  int n_;
  int fd_ = -1;
  int port_ = 0;
  std::thread serve_;
};

/// Real mmapped-segment world, one file per test.
class ShmWorld {
 public:
  ShmWorld(int n, std::uint32_t ring_bytes = tr::kShmDefaultRingBytes)
      : n_(n) {
    static int counter = 0;
    path_ = "/tmp/lqcd_test_shm." + std::to_string(getpid()) + "." +
            std::to_string(counter++);
    tr::shm_create(path_, n, ring_bytes);
  }
  ~ShmWorld() { unlink(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] MakeTransport make() const {
    const std::string path = path_;
    const int n = n_;
    return [path, n](int r) {
      return std::make_unique<tr::ShmTransport>(r, n, path);
    };
  }

 private:
  int n_;
  std::string path_;
};

// --- point-to-point and collectives ----------------------------------

TEST(InProcessTransport, SendRecvAndTryRecv) {
  auto eps = tr::make_inprocess_group(2);
  const std::vector<std::byte> p = make_payload(100);
  std::vector<std::byte> got;
  EXPECT_FALSE(eps[1]->try_recv(0, ctrl_tag(0), got));
  eps[0]->send(1, ctrl_tag(0), p);
  eps[0]->send(1, ctrl_tag(1), make_payload(5, 9));
  eps[1]->recv(0, ctrl_tag(0), got);
  EXPECT_EQ(got, p);
  EXPECT_TRUE(eps[1]->try_recv(0, ctrl_tag(1), got));
  EXPECT_EQ(got, make_payload(5, 9));
  EXPECT_FALSE(eps[1]->try_recv(0, ctrl_tag(2), got));
}

TEST(InProcessTransport, SelfSendCountsZeroWireBytes) {
  auto eps = tr::make_inprocess_group(2);
  const std::vector<std::byte> p = make_payload(64);
  eps[0]->send(0, ctrl_tag(0), p);
  std::vector<std::byte> got;
  eps[0]->recv(0, ctrl_tag(0), got);
  EXPECT_EQ(got, p);
  EXPECT_EQ(eps[0]->wire_stats().frames, 1);
  EXPECT_EQ(eps[0]->wire_stats().payload_bytes, 64);
  EXPECT_EQ(eps[0]->wire_stats().wire_frames, 0);
  EXPECT_EQ(eps[0]->wire_stats().wire_bytes, 0);
}

TEST(InProcessTransport, MessagesWithSameTagFromDifferentPeersKeepApart) {
  auto eps = tr::make_inprocess_group(3);
  eps[1]->send(0, ctrl_tag(0), make_payload(8, 1));
  eps[2]->send(0, ctrl_tag(0), make_payload(8, 2));
  std::vector<std::byte> got;
  eps[0]->recv(2, ctrl_tag(0), got);
  EXPECT_EQ(got, make_payload(8, 2));
  eps[0]->recv(1, ctrl_tag(0), got);
  EXPECT_EQ(got, make_payload(8, 1));
}

void collective_drill(int n, const MakeTransport& make) {
  const std::size_t m = 16;
  std::vector<std::vector<double>> reduced(static_cast<std::size_t>(n));
  std::vector<std::vector<std::vector<std::byte>>> gathered(
      static_cast<std::size_t>(n));
  std::vector<std::vector<std::byte>> bcast(static_cast<std::size_t>(n));
  run_spmd(n, make, [&](int r, tr::Transport& tp) {
    tp.barrier();
    // Allreduce: nontrivial doubles, bitwise-checked below.
    std::vector<double> v(m);
    for (std::size_t i = 0; i < m; ++i)
      v[i] = (r + 1) * 0.1 + static_cast<double>(i) * 1e-7;
    tp.allreduce_sum(v);
    reduced[static_cast<std::size_t>(r)] = v;
    // Gather: rank r contributes r+1 salted bytes.
    const std::vector<std::byte> mine =
        make_payload(static_cast<std::size_t>(r) + 1,
                     static_cast<unsigned>(r));
    gathered[static_cast<std::size_t>(r)] = tp.gather(0, mine);
    // Broadcast from rank 1.
    std::vector<std::byte> b;
    if (r == 1) b = make_payload(33, 77);
    tp.broadcast(1, b);
    bcast[static_cast<std::size_t>(r)] = b;
    tp.barrier();
  });
  // Allreduce is the fixed rank-ascending sum, identical on every rank.
  std::vector<double> expect(m);
  for (std::size_t i = 0; i < m; ++i)
    expect[i] = 1 * 0.1 + static_cast<double>(i) * 1e-7;
  for (int r = 1; r < n; ++r)
    for (std::size_t i = 0; i < m; ++i)
      expect[i] += (r + 1) * 0.1 + static_cast<double>(i) * 1e-7;
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(reduced[static_cast<std::size_t>(r)].size(), m);
    EXPECT_EQ(std::memcmp(reduced[static_cast<std::size_t>(r)].data(),
                          expect.data(), m * sizeof(double)),
              0)
        << "allreduce not bitwise deterministic on rank " << r;
  }
  // Gather: root got every rank's bytes in rank order, others nothing.
  ASSERT_EQ(gathered[0].size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(gathered[0][static_cast<std::size_t>(r)],
              make_payload(static_cast<std::size_t>(r) + 1,
                           static_cast<unsigned>(r)));
  for (int r = 1; r < n; ++r)
    EXPECT_TRUE(gathered[static_cast<std::size_t>(r)].empty());
  for (int r = 0; r < n; ++r)
    EXPECT_EQ(bcast[static_cast<std::size_t>(r)], make_payload(33, 77));
}

TEST(TransportCollectives, InProcess) {
  collective_drill(4, inprocess_world(4));
}

TEST(TransportCollectives, Socket) {
  SocketWorld w(3);
  collective_drill(3, w.make());
}

TEST(TransportCollectives, Shm) {
  ShmWorld w(3);
  collective_drill(3, w.make());
}

// --- halo exchange parity across backends ----------------------------

struct RankOutcome {
  std::uint32_t field_crc = 0;  // whole extended field, ghosts included
  CommStats stats;
};

/// One halo-exchange campaign on an n-rank world: every rank extracts
/// its interior from the same deterministic global field, exchanges
/// `exchanges` times under `injector`'s schedule, and reports the CRC
/// of its full extended field plus its comm counters.
std::vector<RankOutcome> exchange_drill(int n, const MakeTransport& make,
                                        FaultInjector* injector,
                                        int exchanges,
                                        int max_retries = 3,
                                        HaloPrecision prec =
                                            HaloPrecision::kFull) {
  const LatticeGeometry geo({4, 4, 4, 8});
  const ProcessGrid grid(choose_grid(geo.dims(), n));
  const auto vol = static_cast<std::size_t>(geo.volume());
  std::vector<RankOutcome> out(static_cast<std::size_t>(n));
  run_spmd(n, make, [&](int r, tr::Transport& tp) {
    RankCluster<double> cl(geo, grid, tp);
    ResilienceConfig rc;
    rc.checksum = true;
    rc.max_retries = max_retries;
    cl.set_resilience(rc);
    cl.set_halo_precision(prec);
    if (injector != nullptr) cl.set_fault_injector(injector);
    aligned_vector<WilsonSpinorD> src(vol);
    SiteRngFactory rngs(99);
    for (std::size_t i = 0; i < vol; ++i) {
      CounterRng rng = rngs.make(i);
      for (int s = 0; s < Ns; ++s)
        for (int c = 0; c < Nc; ++c)
          src[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
    }
    auto f = cl.make_fermion();
    cl.extract_local(f, {src.data(), vol});
    for (int e = 0; e < exchanges; ++e) cl.exchange(f);
    RankOutcome& o = out[static_cast<std::size_t>(r)];
    o.field_crc = crc32(f.data(), f.size() * sizeof(WilsonSpinorD));
    o.stats = cl.stats();
    tp.barrier();
  });
  return out;
}

void expect_same_outcomes(const std::vector<RankOutcome>& a,
                          const std::vector<RankOutcome>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(a[r].field_crc, b[r].field_crc)
        << what << ": ghost bytes differ on rank " << r;
    EXPECT_EQ(a[r].stats.messages, b[r].stats.messages) << what;
    EXPECT_EQ(a[r].stats.bytes, b[r].stats.bytes) << what;
    EXPECT_EQ(a[r].stats.timeouts, b[r].stats.timeouts) << what;
    EXPECT_EQ(a[r].stats.crc_failures, b[r].stats.crc_failures) << what;
    EXPECT_EQ(a[r].stats.retransmits, b[r].stats.retransmits) << what;
  }
}

TEST(TransportParity, CleanExchangeIdenticalAcrossBackends) {
  const int n = 2;
  const int reps = 3;
  const auto in_proc = exchange_drill(n, inprocess_world(n), nullptr,
                                      reps);
  SocketWorld sw(n);
  const auto sock = exchange_drill(n, sw.make(), nullptr, reps);
  ShmWorld hw(n);
  const auto shm = exchange_drill(n, hw.make(), nullptr, reps);
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess");
  // Exact wire accounting, identical on every backend: grid {1,1,1,2}
  // puts only the two T faces on the wire (4*4*4 sites * 192 B + 32 B
  // header each); the six self faces count zero.
  const std::int64_t face = 4 * 4 * 4 * 192 + 32;
  for (const auto* world : {&in_proc, &sock, &shm}) {
    for (const RankOutcome& o : *world) {
      EXPECT_EQ(o.stats.wire_frames, 2 * reps);
      EXPECT_EQ(o.stats.wire_bytes, 2 * reps * face);
      EXPECT_EQ(o.stats.messages, 8 * reps);
      EXPECT_EQ(o.stats.retransmits, 0);
    }
  }
}

/// The scripted schedule must fire identically on every backend: one
/// drop (marker frame -> NACK -> retransmit on the wire backends, local
/// re-roll in process) on messages *to* rank 0.
TEST(TransportParity, DropScheduleFiresIdentically) {
  const int n = 2;
  const auto drill = [&](const MakeTransport& make) {
    FaultInjector fi(2024);
    FaultSpec drop;
    drop.drop_prob = 1.0;
    drop.last_epoch = 0;  // first exchange only
    fi.set_rank_spec(0, drop);
    fi.set_event_budget(1);
    return exchange_drill(n, make, &fi, 2);
  };
  const auto in_proc = drill(inprocess_world(n));
  SocketWorld sw(n);
  const auto sock = drill(sw.make());
  ShmWorld hw(n);
  const auto shm = drill(hw.make());
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess");
  // Receiver rank 0 saw exactly one drop and recovered it.
  EXPECT_EQ(in_proc[0].stats.timeouts, 1);
  EXPECT_EQ(in_proc[0].stats.retransmits, 1);
  EXPECT_EQ(in_proc[0].stats.crc_failures, 0);
  EXPECT_EQ(in_proc[1].stats.timeouts, 0);
  // And the recovered ghosts match a clean run bit for bit.
  const auto clean = exchange_drill(n, inprocess_world(n), nullptr, 2);
  EXPECT_EQ(in_proc[0].field_crc, clean[0].field_crc);
  EXPECT_EQ(in_proc[1].field_crc, clean[1].field_crc);
}

/// Same for corruption: CRC verify catches it, retransmit delivers the
/// pristine payload from the sender's cache.
TEST(TransportParity, CorruptionCaughtAndHealedIdentically) {
  const int n = 2;
  const auto drill = [&](const MakeTransport& make) {
    FaultInjector fi(77);
    FaultSpec corrupt;
    corrupt.corrupt_prob = 1.0;
    corrupt.last_epoch = 0;
    fi.set_rank_spec(0, corrupt);
    fi.set_event_budget(1);
    return exchange_drill(n, make, &fi, 2);
  };
  const auto in_proc = drill(inprocess_world(n));
  SocketWorld sw(n);
  const auto sock = drill(sw.make());
  ShmWorld hw(n);
  const auto shm = drill(hw.make());
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess");
  EXPECT_EQ(in_proc[0].stats.crc_failures, 1);
  EXPECT_EQ(in_proc[0].stats.retransmits, 1);
  EXPECT_EQ(in_proc[0].stats.timeouts, 0);
  const auto clean = exchange_drill(n, inprocess_world(n), nullptr, 2);
  EXPECT_EQ(in_proc[0].field_crc, clean[0].field_crc);
  EXPECT_EQ(in_proc[1].field_crc, clean[1].field_crc);
}

// --- the same parity drills with compressed (half-precision) halos ---

/// Clean compressed exchange: the int16 block-float frames must be
/// byte-identical on every backend (the codec is T-independent and
/// deterministic), so the reconstructed ghost fields carry the same CRC
/// and the wire accounting shrinks to 52 B/site exactly.
TEST(TransportParity, CompressedCleanExchangeIdenticalAcrossBackends) {
  const int n = 2;
  const int reps = 3;
  const auto half = [&](const MakeTransport& make) {
    return exchange_drill(n, make, nullptr, reps, 3, HaloPrecision::kHalf);
  };
  const auto in_proc = half(inprocess_world(n));
  SocketWorld sw(n);
  const auto sock = half(sw.make());
  ShmWorld hw(n);
  const auto shm = half(hw.make());
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess[half]");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess[half]");
  // Compressed wire accounting: 4*4*4 face sites at 52 B (float scale +
  // 24 int16) + 32 B header, against 192 B/site at full precision.
  const std::int64_t face = 4 * 4 * 4 * 52 + 32;
  const std::int64_t full_face_payload = 4 * 4 * 4 * 192;
  for (const auto* world : {&in_proc, &sock, &shm}) {
    for (const RankOutcome& o : *world) {
      EXPECT_EQ(o.stats.wire_frames, 2 * reps);
      EXPECT_EQ(o.stats.wire_bytes, 2 * reps * face);
      EXPECT_EQ(o.stats.compressed_frames, 8 * reps);
      EXPECT_EQ(o.stats.full_equiv_bytes, 8 * reps * full_face_payload);
      EXPECT_EQ(o.stats.retransmits, 0);
    }
  }
  // Quantization must actually have happened: the reconstructed ghosts
  // differ from the full-precision run's.
  const auto full = exchange_drill(n, inprocess_world(n), nullptr, reps);
  EXPECT_NE(in_proc[0].field_crc, full[0].field_crc);
}

/// Scripted drop with compressed frames: the NACK/retransmit protocol
/// is payload-agnostic, so the recovery fires identically on every
/// backend and heals to the clean compressed ghosts bit for bit.
TEST(TransportParity, CompressedDropScheduleFiresIdentically) {
  const int n = 2;
  const auto drill = [&](const MakeTransport& make) {
    FaultInjector fi(2024);
    FaultSpec drop;
    drop.drop_prob = 1.0;
    drop.last_epoch = 0;
    fi.set_rank_spec(0, drop);
    fi.set_event_budget(1);
    return exchange_drill(n, make, &fi, 2, 3, HaloPrecision::kHalf);
  };
  const auto in_proc = drill(inprocess_world(n));
  SocketWorld sw(n);
  const auto sock = drill(sw.make());
  ShmWorld hw(n);
  const auto shm = drill(hw.make());
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess[half]");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess[half]");
  EXPECT_EQ(in_proc[0].stats.timeouts, 1);
  EXPECT_EQ(in_proc[0].stats.retransmits, 1);
  EXPECT_EQ(in_proc[0].stats.crc_failures, 0);
  const auto clean = exchange_drill(n, inprocess_world(n), nullptr, 2, 3,
                                    HaloPrecision::kHalf);
  EXPECT_EQ(in_proc[0].field_crc, clean[0].field_crc);
  EXPECT_EQ(in_proc[1].field_crc, clean[1].field_crc);
}

/// Corrupted compressed frame: the CRC covers the int16 payload the
/// same as a full one; verify-fail -> NACK -> pristine retransmit from
/// the sender's cache, identically on every backend.
TEST(TransportParity, CompressedCorruptionCaughtAndHealedIdentically) {
  const int n = 2;
  const auto drill = [&](const MakeTransport& make) {
    FaultInjector fi(77);
    FaultSpec corrupt;
    corrupt.corrupt_prob = 1.0;
    corrupt.last_epoch = 0;
    fi.set_rank_spec(0, corrupt);
    fi.set_event_budget(1);
    return exchange_drill(n, make, &fi, 2, 3, HaloPrecision::kHalf);
  };
  const auto in_proc = drill(inprocess_world(n));
  SocketWorld sw(n);
  const auto sock = drill(sw.make());
  ShmWorld hw(n);
  const auto shm = drill(hw.make());
  expect_same_outcomes(in_proc, sock, "socket-vs-inprocess[half]");
  expect_same_outcomes(in_proc, shm, "shm-vs-inprocess[half]");
  EXPECT_EQ(in_proc[0].stats.crc_failures, 1);
  EXPECT_EQ(in_proc[0].stats.retransmits, 1);
  EXPECT_EQ(in_proc[0].stats.timeouts, 0);
  const auto clean = exchange_drill(n, inprocess_world(n), nullptr, 2, 3,
                                    HaloPrecision::kHalf);
  EXPECT_EQ(in_proc[0].field_crc, clean[0].field_crc);
  EXPECT_EQ(in_proc[1].field_crc, clean[1].field_crc);
}

// --- error contract: budgets, death, timeouts ------------------------

/// Every attempt of every message to rank 0 drops: the receive must
/// burn the whole retry budget and surface FatalError, with the exact
/// timeout/retransmit counts the protocol promises.
void budget_exhaustion_drill(int n, const MakeTransport& make) {
  FaultInjector fi(5);
  FaultSpec drop;
  drop.drop_prob = 1.0;
  fi.set_rank_spec(0, drop);
  const LatticeGeometry geo({4, 4, 4, 8});
  const ProcessGrid grid(choose_grid(geo.dims(), n));
  bool fatal = false;
  CommStats stats0;
  run_spmd(n, make, [&](int r, tr::Transport& tp) {
    RankCluster<double> cl(geo, grid, tp);
    ResilienceConfig rc;
    rc.checksum = true;
    rc.max_retries = 2;
    cl.set_resilience(rc);
    cl.set_fault_injector(&fi);
    auto f = cl.make_fermion();
    if (r == 0) {
      try {
        cl.exchange(f);
      } catch (const FatalError&) {
        fatal = true;
      }
      stats0 = cl.stats();
    } else {
      // Faults target only receiver rank 0, so this exchange is clean —
      // unless rank 0's fatal exit lands first, in which case observing
      // the death as TransientError is the correct outcome too (a
      // closing TCP peer can destroy frames still in flight).
      try {
        cl.exchange(f);
      } catch (const TransientError&) {
      }
    }
  });
  EXPECT_TRUE(fatal) << "exhausted retry budget must raise FatalError";
  // First wire face: attempts 0..2 all drop -> 3 timeouts, 2
  // retransmits, then FatalError before any further face.
  EXPECT_EQ(stats0.timeouts, 3);
  EXPECT_EQ(stats0.retransmits, 2);
}

TEST(TransportErrors, RetryBudgetExhaustionIsFatalInProcess) {
  budget_exhaustion_drill(2, inprocess_world(2));
}

TEST(TransportErrors, RetryBudgetExhaustionIsFatalSocket) {
  SocketWorld w(2);
  budget_exhaustion_drill(2, w.make());
}

TEST(TransportErrors, RetryBudgetExhaustionIsFatalShm) {
  ShmWorld w(2);
  budget_exhaustion_drill(2, w.make());
}

/// Peer death mid-exchange_finish: rank 1 connects and exits without
/// sending its faces; rank 0's finish must surface TransientError (the
/// PR-1 checkpoint/retry signal), not hang and not FatalError.
TEST(TransportErrors, SocketPeerDeathMidFinishIsTransient) {
  SocketWorld w(2);
  const MakeTransport make = w.make();
  const LatticeGeometry geo({4, 4, 4, 8});
  const ProcessGrid grid(choose_grid(geo.dims(), 2));
  bool transient = false;
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    if (r == 1) return;  // die immediately: endpoint destructs, EOF
    RankCluster<double> cl(geo, grid, tp);
    auto f = cl.make_fermion();
    try {
      cl.exchange_begin(f);
      cl.exchange_finish(f);
    } catch (const TransientError&) {
      transient = true;
    }
  });
  EXPECT_TRUE(transient);
}

TEST(TransportErrors, ShmPeerDeathDrainsThenFails) {
  ShmWorld w(2);
  const MakeTransport make = w.make();
  std::vector<std::byte> got;
  bool transient = false;
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    if (r == 1) {
      // Deliver one message, then die (destructor sets the dead flag).
      tp.send(0, ctrl_tag(0), make_payload(200, 3));
      return;
    }
    // The parting message is still delivered...
    tp.recv(1, ctrl_tag(0), got);
    // ...then the death surfaces.
    try {
      std::vector<std::byte> never;
      tp.recv(1, ctrl_tag(1), never);
    } catch (const TransientError&) {
      transient = true;
    }
  });
  EXPECT_EQ(got, make_payload(200, 3));
  EXPECT_TRUE(transient);
}

/// The launcher-side dead flag (what lqcd_launch sets on waitpid) is
/// equivalent to the peer's own exit.
TEST(TransportErrors, ShmLauncherDeadFlagRaisesTransient) {
  ShmWorld w(2);
  tr::shm_mark_dead(w.path(), 1);
  const MakeTransport make = w.make();
  bool transient = false;
  run_spmd(1, [&](int) { return make(0); },
           [&](int, tr::Transport& tp) {
             try {
               std::vector<std::byte> never;
               tp.recv(1, ctrl_tag(0), never);
             } catch (const TransientError&) {
               transient = true;
             }
           });
  EXPECT_TRUE(transient);
}

TEST(TransportErrors, SocketRecvTimeoutIsTransient) {
  SocketWorld w(2);
  const MakeTransport make = w.make(/*recv_timeout_ms=*/100);
  bool transient = false;
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    if (r == 1) {
      // Alive but silent; wait for rank 0's all-clear so the EOF of our
      // exit cannot race the timeout under test.
      std::vector<std::byte> done;
      tp.recv(0, ctrl_tag(0), done);
      return;
    }
    try {
      std::vector<std::byte> never;
      tp.recv(1, ctrl_tag(0), never);
    } catch (const TransientError&) {
      transient = true;
    }
    tp.send(1, ctrl_tag(0), make_payload(1));
  });
  EXPECT_TRUE(transient);
}

/// A frame bigger than the ring streams through it in segments: the
/// ring is flow control, not a message-size limit.
TEST(ShmTransport, LargeFrameStreamsThroughSmallRing) {
  ShmWorld w(2, /*ring_bytes=*/4096);
  const MakeTransport make = w.make();
  const std::vector<std::byte> big = make_payload(64 * 1024, 5);
  std::vector<std::byte> got;
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    if (r == 0) {
      tp.send(1, ctrl_tag(0), big);
      std::vector<std::byte> ack;
      tp.recv(1, ctrl_tag(1), ack);  // keep the segment mapped until read
    } else {
      tp.recv(0, ctrl_tag(0), got);
      tp.send(0, ctrl_tag(1), make_payload(1));
    }
  });
  EXPECT_EQ(got.size(), big.size());
  EXPECT_EQ(got, big);
}

/// Regression: two ranks pushing frames bigger than the ring at each
/// other — every face sent before any is received, as the halo exchange
/// does — must not deadlock on mutually full rings. Bytes that do not
/// fit spill to the sender's outbox and pump() flushes them.
TEST(ShmTransport, BidirectionalLargeFramesDoNotDeadlock) {
  ShmWorld w(2, /*ring_bytes=*/4096);
  const MakeTransport make = w.make();
  const std::vector<std::byte> big = make_payload(256 * 1024, 7);
  std::vector<std::byte> got[2];
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    tp.send(1 - r, ctrl_tag(0), big);
    tp.recv(1 - r, ctrl_tag(0), got[r]);
  });
  EXPECT_EQ(got[0], big);
  EXPECT_EQ(got[1], big);
}

/// Regression: a producer that dies mid-frame (SIGKILL leaves a torn
/// frame in the ring) must surface TransientError promptly — the torn
/// residue in the FrameReader can never complete, so the receiver must
/// not wait on it. The dead flag set while the spilled remainder is
/// still pending emulates the launcher's --kill-rank drill.
TEST(TransportErrors, ShmTornFrameFromDeadProducerIsTransient) {
  ShmWorld w(2, /*ring_bytes=*/4096);
  const MakeTransport make = w.make();
  std::atomic<bool> torn{false};
  bool transient = false;
  run_spmd(2, make, [&](int r, tr::Transport& tp) {
    if (r == 1) {
      // The ring takes the first ~4K of the frame; the rest spills to
      // the outbox. Marking ourselves dead before it flushes strands a
      // permanent partial frame, exactly like a mid-write SIGKILL.
      tp.send(0, ctrl_tag(0), make_payload(64 * 1024, 9));
      tr::shm_mark_dead(w.path(), 1);
      torn.store(true, std::memory_order_release);
      return;
    }
    while (!torn.load(std::memory_order_acquire)) std::this_thread::yield();
    try {
      std::vector<std::byte> never;
      tp.recv(1, ctrl_tag(0), never);
    } catch (const TransientError&) {
      transient = true;
    }
  });
  EXPECT_TRUE(transient);
}

}  // namespace
}  // namespace lqcd
