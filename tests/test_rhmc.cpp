// Tests for one-flavor rational HMC: the generalized x^{-s} rational
// approximation, the rational force against a finite difference of the
// rational action, and the full trajectory driver.
#include <gtest/gtest.h>

#include <cmath>

#include "gauge/heatbath.hpp"
#include "gauge/observables.hpp"
#include "hmc/rhmc.hpp"
#include "solver/rational.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

GaugeFieldD mildly_thermal(std::uint64_t seed, double beta = 5.4) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = beta, .or_per_hb = 1, .seed = seed + 7});
  for (int i = 0; i < 4; ++i) hb.sweep();
  return u;
}

void fill_gaussian(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

RhmcParams rhmc_params() {
  RhmcParams p;
  p.beta = 5.4;
  p.kappa = 0.10;
  p.poles = 24;
  p.spectrum_min = 0.1;
  p.spectrum_max = 20.0;
  p.solver_tol = 1e-11;
  return p;
}

TEST(RationalPow, GeneralExponentScalarAccuracy) {
  for (const double s : {0.25, 0.5, 0.75}) {
    const RationalApprox r = rational_inverse_pow(s, 24);
    for (const double x : {0.3, 1.0, 3.0}) {
      EXPECT_NEAR(r.evaluate(x) * std::pow(x, s), 1.0, 1e-3)
          << "s=" << s << " x=" << x;
    }
  }
}

TEST(RationalPow, ScaledThreeQuarters) {
  const RationalApprox r = rational_inverse_pow_scaled(0.75, 28, 0.1, 20.0);
  for (const double x : {0.1, 0.5, 2.0, 10.0, 20.0}) {
    EXPECT_NEAR(r.evaluate(x) * std::pow(x, 0.75), 1.0, 5e-3) << x;
  }
}

TEST(RationalPow, HalfMatchesDedicatedConstruction) {
  const RationalApprox a = rational_inverse_pow(0.5, 12);
  const RationalApprox b = rational_inverse_sqrt(12);
  ASSERT_EQ(a.poles.size(), b.poles.size());
  for (std::size_t k = 0; k < a.poles.size(); ++k) {
    EXPECT_NEAR(a.poles[k], b.poles[k], 1e-14);
    EXPECT_NEAR(a.residues[k], b.residues[k], 1e-12);
  }
}

TEST(RationalPow, QuarterPowerComposition) {
  // x^{1/4} = x * x^{-3/4}: the refresh identity used by the RHMC driver,
  // checked on scalars.
  const RationalApprox r34 = rational_inverse_pow_scaled(0.75, 28, 0.1,
                                                         20.0);
  for (const double x : {0.2, 1.0, 5.0}) {
    const double quarter = x * r34.evaluate(x);
    EXPECT_NEAR(quarter, std::pow(x, 0.25), 5e-3 * std::pow(x, 0.25)) << x;
  }
}

TEST(RationalPow, Validation) {
  EXPECT_THROW(rational_inverse_pow(0.0, 8), Error);
  EXPECT_THROW(rational_inverse_pow(1.0, 8), Error);
}

TEST(RhmcForce, MatchesFiniteDifferenceOfRationalAction) {
  // The decisive test: along dU/dt = pU the rational pseudofermion action
  // must satisfy dS/dt = -2 sum tr(p F).
  const GaugeFieldD u0 = mildly_thermal(700);
  const RhmcParams params = rhmc_params();
  FermionFieldD phi(geo4());
  fill_gaussian(phi.span(), 701);

  Field<LinkSite<double>> f(geo4());
  add_rhmc_force(f, u0, params, phi.span());

  MomentumField p(geo4());
  draw_momenta(p, SiteRngFactory(702));
  double analytic = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      analytic += trace(mul(p[s][static_cast<std::size_t>(mu)],
                            f[s][static_cast<std::size_t>(mu)]))
                      .re;
  analytic *= -2.0;

  const double eps = 1e-5;
  auto action_at = [&](double t) {
    GaugeFieldD u(geo4());
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      for (int mu = 0; mu < Nd; ++mu) {
        ColorMatrixD step = p[s][static_cast<std::size_t>(mu)];
        step *= t;
        u(s, mu) = mul(exp_matrix(step), u0(s, mu));
      }
    return rhmc_action(u, params, phi.span());
  };
  const double numeric = (action_at(eps) - action_at(-eps)) / (2.0 * eps);
  EXPECT_NEAR(numeric, analytic, 2e-4 * std::abs(analytic) + 1e-6);
}

TEST(RhmcDriver, EnergyConservationAndAcceptance) {
  GaugeFieldD u = mildly_thermal(703);
  RhmcParams params = rhmc_params();
  params.trajectory_length = 0.3;
  params.steps = 8;
  params.seed = 704;
  Rhmc rhmc(u, params);
  int accepted = 0;
  const int n = 3;
  for (int i = 0; i < n; ++i) {
    const RhmcTrajectoryResult r = rhmc.trajectory();
    accepted += r.accepted;
    EXPECT_LT(std::abs(r.delta_h), 1.0) << i;
    EXPECT_GT(r.cg_iterations, 0);
  }
  EXPECT_GE(accepted, n - 1);
  EXPECT_LT(u.max_unitarity_error(), 1e-10);
  EXPECT_EQ(rhmc.trajectories_run(), static_cast<std::uint64_t>(n));
}

TEST(RhmcDriver, RejectRestoresConfiguration) {
  GaugeFieldD u = mildly_thermal(705);
  GaugeFieldD before(geo4());
  RhmcParams params = rhmc_params();
  params.trajectory_length = 3.0;
  params.steps = 1;
  params.integrator = Integrator::Leapfrog;
  params.seed = 706;
  Rhmc rhmc(u, params);
  bool saw_reject = false;
  for (int i = 0; i < 4 && !saw_reject; ++i) {
    for (std::int64_t s = 0; s < geo4().volume(); ++s)
      before.site(s) = u.site(s);
    const RhmcTrajectoryResult r = rhmc.trajectory();
    if (!r.accepted) {
      saw_reject = true;
      double d = 0.0;
      for (std::int64_t s = 0; s < geo4().volume(); ++s)
        for (int mu = 0; mu < Nd; ++mu)
          d += norm2(u(s, mu) - before(s, mu));
      EXPECT_EQ(d, 0.0);
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(RhmcDriver, OneFlavorSitsBetweenQuenchedAndTwoFlavor) {
  // det(A)^{1/2} is "half a determinant": the RHMC action value for the
  // same phi must lie between 0 (quenched) and the two-flavor
  // phi^†A^{-1}phi when the spectrum of A is below 1... rather than rely
  // on spectrum position, just check S_pf is positive and finite.
  const GaugeFieldD u = mildly_thermal(707);
  FermionFieldD phi(geo4());
  fill_gaussian(phi.span(), 708);
  const double s = rhmc_action(u, rhmc_params(), phi.span());
  EXPECT_GT(s, 0.0);
  EXPECT_TRUE(std::isfinite(s));
}

TEST(RhmcDriver, Validation) {
  GaugeFieldD u(geo4());
  u.set_unit();
  RhmcParams p = rhmc_params();
  p.poles = 2;
  EXPECT_THROW(Rhmc(u, p), Error);
  p = rhmc_params();
  p.kappa = 0.3;
  EXPECT_THROW(Rhmc(u, p), Error);
}

}  // namespace
}  // namespace lqcd
