// Tests for the fault-tolerance layer: error taxonomy, deterministic
// fault injection, checksummed halo exchange with bounded retransmit,
// solver breakdown detection/recovery, crash-safe file replacement and
// HMC checkpoint/restart determinism.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/io.hpp"
#include "gauge/observables.hpp"
#include "hmc/checkpoint.hpp"
#include "hmc/hmc.hpp"
#include "linalg/blas.hpp"
#include "solver/bicgstab.hpp"
#include "solver/cg.hpp"
#include "solver/mixed_cg.hpp"
#include "util/atomic_io.hpp"
#include "util/error.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo8() {
  static LatticeGeometry geo({8, 4, 4, 8});
  return geo;
}

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

GaugeFieldD thermal(const LatticeGeometry& geo, std::uint64_t seed) {
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < 3; ++i) hb.sweep();
  return u;
}

double field_diff2(const FermionFieldD& a, const FermionFieldD& b) {
  double diff = 0.0;
  for (std::int64_t s = 0; s < a.geometry().volume(); ++s)
    diff += norm2(a[s] - b[s]);
  return diff;
}

std::string temp_path(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

/// Wraps an operator and poisons applies in [fail_first, fail_last] with a
/// NaN — the footprint of a silent data corruption inside the matrix.
template <typename T>
class FaultyOperator final : public LinearOperator<T> {
 public:
  FaultyOperator(const LinearOperator<T>& inner, int fail_first,
                 int fail_last)
      : inner_(inner), fail_first_(fail_first), fail_last_(fail_last) {}

  void apply(std::span<WilsonSpinor<T>> out,
             std::span<const WilsonSpinor<T>> in) const override {
    inner_.apply(out, in);
    const int k = count_++;
    if (k >= fail_first_ && k <= fail_last_)
      out[out.size() / 2].s[0].c[0] =
          Cplx<T>(std::numeric_limits<T>::quiet_NaN(), T(0));
  }
  [[nodiscard]] std::int64_t vector_size() const override {
    return inner_.vector_size();
  }
  [[nodiscard]] double flops_per_apply() const override {
    return inner_.flops_per_apply();
  }
  [[nodiscard]] bool hermitian_positive() const override {
    return inner_.hermitian_positive();
  }

 private:
  const LinearOperator<T>& inner_;
  int fail_first_;
  int fail_last_;
  mutable std::atomic<int> count_{0};
};

// --- error taxonomy ----------------------------------------------------

TEST(ErrorTaxonomy, TransientAndFatalAreErrors) {
  EXPECT_THROW(throw TransientError("peer lost"), Error);
  EXPECT_THROW(throw FatalError("corrupt"), Error);
  // The split is meaningful: a handler can retry transients only.
  try {
    throw TransientError("rank died");
  } catch (const FatalError&) {
    FAIL() << "transient caught as fatal";
  } catch (const TransientError& e) {
    EXPECT_NE(std::string(e.what()).find("rank died"), std::string::npos);
  }
}

// --- fault injector ----------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  const FaultSpec spec{.corrupt_prob = 0.5, .drop_prob = 0.5};
  FaultInjector a(1234, spec);
  FaultInjector b(1234, spec);
  std::vector<double> bytes_a(64, 1.5), bytes_b(64, 1.5);
  const std::span<std::byte> raw_a{reinterpret_cast<std::byte*>(
                                       bytes_a.data()),
                                   bytes_a.size() * sizeof(double)};
  const std::span<std::byte> raw_b{reinterpret_cast<std::byte*>(
                                       bytes_b.data()),
                                   bytes_b.size() * sizeof(double)};
  for (std::uint64_t epoch = 0; epoch < 8; ++epoch)
    for (int rank = 0; rank < 4; ++rank)
      for (int mu = 0; mu < Nd; ++mu)
        for (int dir = -1; dir <= 1; dir += 2) {
          EXPECT_EQ(a.should_drop(epoch, rank, mu, dir, 0),
                    b.should_drop(epoch, rank, mu, dir, 0));
          EXPECT_EQ(a.corrupt(raw_a, epoch, rank, mu, dir, 0),
                    b.corrupt(raw_b, epoch, rank, mu, dir, 0));
        }
  // Identical decisions implies identical injected bit flips.
  EXPECT_EQ(std::memcmp(bytes_a.data(), bytes_b.data(), raw_a.size()), 0);
  EXPECT_EQ(a.stats().drops.load(), b.stats().drops.load());
  EXPECT_EQ(a.stats().corruptions.load(), b.stats().corruptions.load());
  EXPECT_GT(a.stats().drops.load() + a.stats().corruptions.load(), 0);
}

TEST(FaultInjectorTest, RetransmitAttemptsRollFreshDice) {
  FaultInjector fi(99, {.drop_prob = 0.5});
  bool differs = false;
  for (std::uint64_t epoch = 0; epoch < 32 && !differs; ++epoch)
    differs = fi.should_drop(epoch, 0, 0, +1, 0) !=
              fi.should_drop(epoch, 0, 0, +1, 1);
  EXPECT_TRUE(differs);  // attempt index is part of the key
}

TEST(FaultInjectorTest, EventBudgetCapsInjection) {
  FaultInjector fi(7, {.corrupt_prob = 1.0});
  fi.set_event_budget(3);
  std::vector<double> payload(16, 2.0);
  const std::span<std::byte> raw{reinterpret_cast<std::byte*>(
                                     payload.data()),
                                 payload.size() * sizeof(double)};
  int injected = 0;
  for (int k = 0; k < 10; ++k)
    injected += fi.corrupt(raw, 0, 0, 0, +1, k) ? 1 : 0;
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(fi.stats().corruptions.load(), 3);
}

// --- crash-safe file replacement ---------------------------------------

TEST(AtomicIo, WriterFailureLeavesOriginalIntact) {
  const std::string path = temp_path("lqcd_atomic_io_test.dat");
  atomic_write_file(path, [](std::ostream& os) { os << "generation-1"; });
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& os) {
                                   os << "gener";  // partial write…
                                   throw std::runtime_error("kill");
                                 }),
               std::runtime_error);
  std::ifstream is(path);
  std::string content;
  std::getline(is, content);
  EXPECT_EQ(content, "generation-1");  // old file untouched
  // No temporary litter left next to the target.
  const auto dir = std::filesystem::path(path).parent_path();
  for (const auto& e : std::filesystem::directory_iterator(dir))
    EXPECT_EQ(e.path().string().find("lqcd_atomic_io_test.dat.tmp"),
              std::string::npos);
  atomic_write_file(path, [](std::ostream& os) { os << "generation-2"; });
  std::ifstream is2(path);
  std::getline(is2, content);
  EXPECT_EQ(content, "generation-2");
  std::filesystem::remove(path);
}

// --- gauge file integrity ----------------------------------------------

TEST(GaugeIo, RejectsBitFlippedFile) {
  const GaugeFieldD u = thermal(geo4(), 500);
  const std::string path = temp_path("lqcd_corrupt_test.cfg");
  save_gauge(u, path, 5.9);

  // Flip one bit in the middle of the link payload.
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  const auto size = std::filesystem::file_size(path);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();

  GaugeFieldD v(geo4());
  EXPECT_THROW(load_gauge(v, path), Error);
  std::filesystem::remove(path);
}

TEST(GaugeIo, RejectsTruncatedFile) {
  const GaugeFieldD u = thermal(geo4(), 501);
  const std::string path = temp_path("lqcd_truncate_test.cfg");
  save_gauge(u, path, 5.9);
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) / 2);
  GaugeFieldD v(geo4());
  EXPECT_THROW(load_gauge(v, path), Error);
  std::filesystem::remove(path);
}

// --- hardened halo exchange --------------------------------------------

TEST(ResilientHalo, CorruptionDetectedRetransmittedBitIdentical) {
  const GaugeFieldD u = thermal(geo8(), 310);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));

  FaultInjector fi(4242, {.corrupt_prob = 1.0});
  fi.set_event_budget(5);  // hammer the first messages, then run clean
  dist.cluster().set_resilience({.checksum = true, .max_retries = 8});
  dist.cluster().set_fault_injector(&fi);
  dist.cluster().stats().reset();

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  fill_random(in.span(), 311);
  single.apply(a.span(), in.span());
  dist.apply(b.span(), in.span());

  // Every injected corruption was caught by the CRC and retransmitted;
  // the delivered halos — and hence the operator — are bit-identical.
  EXPECT_EQ(field_diff2(a, b), 0.0);
  const CommStats& st = dist.cluster().stats();
  EXPECT_EQ(st.crc_failures, 5);
  EXPECT_EQ(st.retransmits, 5);
  EXPECT_EQ(fi.stats().corruptions.load(), 5);
  EXPECT_GT(st.checksum_bytes, st.bytes);  // retransmits re-framed
  EXPECT_GT(st.modeled_delay_us, 0.0);     // backoff was charged
}

TEST(ResilientHalo, RandomCorruptionAcrossEpochsStaysBitIdentical) {
  const GaugeFieldD u = thermal(geo8(), 320);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 2, 1, 1}));

  FaultInjector fi(5555, {.corrupt_prob = 0.2, .drop_prob = 0.05});
  dist.cluster().set_resilience({.checksum = true, .max_retries = 12});
  dist.cluster().set_fault_injector(&fi);
  dist.cluster().stats().reset();

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  for (std::uint64_t k = 0; k < 4; ++k) {
    fill_random(in.span(), 321 + k);
    single.apply(a.span(), in.span());
    dist.apply(b.span(), in.span());
    ASSERT_EQ(field_diff2(a, b), 0.0) << "epoch " << k;
  }
  const CommStats& st = dist.cluster().stats();
  EXPECT_GT(st.crc_failures, 0);
  EXPECT_EQ(st.crc_failures + st.timeouts, st.retransmits);
}

TEST(ResilientHalo, DroppedMessagesTimeOutAndRetransmit) {
  const GaugeFieldD u = thermal(geo8(), 330);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));

  FaultInjector fi(77, {.drop_prob = 1.0});
  fi.set_event_budget(4);
  dist.cluster().set_resilience({.checksum = true, .max_retries = 8});
  dist.cluster().set_fault_injector(&fi);
  dist.cluster().stats().reset();

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  fill_random(in.span(), 331);
  single.apply(a.span(), in.span());
  dist.apply(b.span(), in.span());
  EXPECT_EQ(field_diff2(a, b), 0.0);
  EXPECT_EQ(dist.cluster().stats().timeouts, 4);
  EXPECT_EQ(dist.cluster().stats().retransmits, 4);
}

TEST(ResilientHalo, StragglersAreAccounted) {
  const GaugeFieldD u = thermal(geo8(), 340);
  DistributedWilsonOperator<double> dist(u, 0.12, ProcessGrid({2, 1, 1, 2}));
  FaultInjector fi(88, {.straggle_prob = 1.0, .straggle_us = 150.0});
  dist.cluster().set_fault_injector(&fi);
  dist.cluster().stats().reset();

  FermionFieldD in(geo8()), out(geo8());
  fill_random(in.span(), 341);
  dist.apply(out.span(), in.span());
  EXPECT_EQ(dist.cluster().stats().straggler_events, 4);  // every rank
  EXPECT_GE(dist.cluster().stats().modeled_delay_us, 4 * 150.0);
}

TEST(ResilientHalo, UncheckedCorruptionFlowsThroughSilently) {
  // The control experiment: same faults, checksums off — the exchange
  // reports success and the operator silently computes garbage. This is
  // the failure mode the CRC framing exists to close.
  const GaugeFieldD u = thermal(geo8(), 350);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));

  FaultInjector fi(91, {.corrupt_prob = 1.0});
  fi.set_event_budget(3);
  dist.cluster().set_fault_injector(&fi);  // no set_resilience: raw path
  dist.cluster().stats().reset();

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  fill_random(in.span(), 351);
  single.apply(a.span(), in.span());
  dist.apply(b.span(), in.span());
  const double diff = field_diff2(a, b);
  EXPECT_FALSE(diff == 0.0);  // NaN-safe "results differ"
  EXPECT_EQ(dist.cluster().stats().crc_failures, 0);
  EXPECT_EQ(dist.cluster().stats().retransmits, 0);
}

TEST(ResilientHalo, RetryBudgetExhaustionIsFatal) {
  const GaugeFieldD u = thermal(geo8(), 360);
  DistributedWilsonOperator<double> dist(u, 0.12, ProcessGrid({2, 1, 1, 2}));
  FaultInjector fi(17, {.corrupt_prob = 1.0});  // unlimited events
  dist.cluster().set_resilience({.checksum = true, .max_retries = 2});
  dist.cluster().set_fault_injector(&fi);

  FermionFieldD in(geo8()), out(geo8());
  fill_random(in.span(), 361);
  EXPECT_THROW(dist.apply(out.span(), in.span()), FatalError);
}

TEST(ResilientHalo, RankDeathRaisesTransientThenRecovers) {
  const GaugeFieldD u = thermal(geo8(), 370);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid({2, 1, 1, 2}));

  FaultInjector fi(19);
  dist.cluster().set_fault_injector(&fi);
  dist.cluster().stats().reset();
  fi.schedule_kill(/*rank=*/2, /*epoch=*/0);

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  fill_random(in.span(), 371);
  EXPECT_THROW(dist.apply(b.span(), in.span()), TransientError);
  EXPECT_EQ(fi.stats().kills.load(), 1);

  // Recovery path: the "rank" comes back (checkpoint/restart in a real
  // campaign) and the retried exchange is exact.
  fi.clear_kills();
  single.apply(a.span(), in.span());
  dist.apply(b.span(), in.span());
  EXPECT_EQ(field_diff2(a, b), 0.0);
}

// --- solver breakdown recovery -----------------------------------------

TEST(SolverRecovery, CgRestartsThroughTransientNaN) {
  const GaugeFieldD u = thermal(geo4(), 600);
  WilsonOperator<double> m(u, 0.12);
  NormalOperator<double> nm(m);
  // Applies: 0 = initial rebuild, then one per iteration. Poison apply 3.
  FaultyOperator<double> faulty(nm, 3, 3);

  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 601);
  SolverParams p{.tol = 1e-10, .max_iterations = 2000};
  const SolverResult r = cg_solve<double>(faulty, x.span(), b.span(), p);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.restarts, 1);
  EXPECT_EQ(r.breakdown, Breakdown::None);  // fully recovered
  EXPECT_LE(r.relative_residual, 1e-9);
}

TEST(SolverRecovery, CgPersistentBreakdownExhaustsRestarts) {
  const GaugeFieldD u = thermal(geo4(), 610);
  WilsonOperator<double> m(u, 0.12);
  NormalOperator<double> nm(m);
  FaultyOperator<double> faulty(nm, 2, std::numeric_limits<int>::max());

  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 611);
  SolverParams p{.tol = 1e-10, .max_iterations = 2000, .max_restarts = 2};
  const SolverResult r = cg_solve<double>(faulty, x.span(), b.span(), p);
  EXPECT_FALSE(r.converged);
  // At least one restart was attempted; a rebuild that itself comes back
  // non-finite ends the solve immediately (nothing left to retry from).
  EXPECT_GE(r.restarts, 1);
  EXPECT_EQ(r.breakdown, Breakdown::NonFinite);
}

TEST(SolverRecovery, CgStagnationDetected) {
  const GaugeFieldD u = thermal(geo4(), 620);
  WilsonOperator<double> m(u, 0.12);
  NormalOperator<double> nm(m);
  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 621);
  // An impossible tolerance: CG plateaus at rounding level and must report
  // stagnation instead of spinning to max_iterations.
  SolverParams p{.tol = 1e-30,
                 .max_iterations = 5000,
                 .max_restarts = 2,
                 .stagnation_window = 10};
  const SolverResult r = cg_solve<double>(nm, x.span(), b.span(), p);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.breakdown, Breakdown::Stagnation);
  EXPECT_EQ(r.restarts, 2);
  EXPECT_LT(r.iterations, p.max_iterations);  // gave up early, by design
  // The iterate is still the best available answer, near round-off.
  EXPECT_LE(r.relative_residual, 1e-12);
}

TEST(SolverRecovery, BicgstabRestartsThroughTransientNaN) {
  const GaugeFieldD u = thermal(geo4(), 630);
  WilsonOperator<double> m(u, 0.12);
  FaultyOperator<double> faulty(m, 4, 4);

  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 631);
  SolverParams p{.tol = 1e-8, .max_iterations = 2000};
  const SolverResult r = bicgstab_solve<double>(faulty, x.span(), b.span(), p);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.restarts, 1);
  EXPECT_EQ(r.breakdown, Breakdown::None);
}

TEST(SolverRecovery, MixedCgFallsBackToDoubleOnFloatBreakdown) {
  const GaugeFieldD u = thermal(geo4(), 640);
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  WilsonOperator<double> md(u, 0.12);
  WilsonOperator<float> mf(uf, 0.12);
  NormalOperator<double> nd(md);
  NormalOperator<float> nf(mf);
  // The float operator breaks down on every iteration apply; the double
  // operator is healthy. The solver must converge anyway, in double.
  FaultyOperator<float> faulty_f(nf, 1, std::numeric_limits<int>::max());

  FermionFieldD b(geo4()), x(geo4());
  fill_random(b.span(), 641);
  MixedCgParams mp;
  mp.outer.tol = 1e-10;
  const SolverResult r = mixed_cg_solve(nd, faulty_f, x.span(), b.span(), mp);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.fallbacks, 1);
  EXPECT_LE(r.relative_residual, 1e-10);
}

// --- HMC checkpoint/restart --------------------------------------------

TEST(Checkpoint, RoundTripIsBitExact) {
  const GaugeFieldD u = thermal(geo4(), 700);
  const HmcCheckpointState state{
      .trajectories = 17,
      .accepted = 13,
      .params = {.beta = 5.6, .trajectory_length = 0.7, .steps = 9,
                 .integrator = Integrator::Leapfrog, .seed = 4711}};
  const std::string path = temp_path("lqcd_ckpt_roundtrip.ckpt");
  save_checkpoint(u, state, path);
  EXPECT_TRUE(checkpoint_exists(path));

  GaugeFieldD v(geo4());
  const HmcCheckpointState got = load_checkpoint(v, path);
  EXPECT_EQ(got.trajectories, 17u);
  EXPECT_EQ(got.accepted, 13u);
  EXPECT_EQ(got.params.seed, 4711u);
  EXPECT_EQ(got.params.steps, 9);
  EXPECT_EQ(got.params.integrator, Integrator::Leapfrog);
  EXPECT_EQ(got.params.beta, 5.6);
  EXPECT_EQ(got.params.trajectory_length, 0.7);
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      diff += norm2(v(s, mu) - u(s, mu));
  EXPECT_EQ(diff, 0.0);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsCorruptionAndMismatch) {
  const GaugeFieldD u = thermal(geo4(), 710);
  const std::string path = temp_path("lqcd_ckpt_corrupt.ckpt");
  save_checkpoint(u, {.trajectories = 1, .accepted = 1, .params = {}}, path);

  // Bit flip in the gauge payload → CRC failure.
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  const auto size = std::filesystem::file_size(path);
  f.seekp(static_cast<std::streamoff>(size / 2));
  const char z = 0x7f;
  f.write(&z, 1);
  f.close();
  GaugeFieldD v(geo4());
  EXPECT_THROW(load_checkpoint(v, path), FatalError);

  // Truncation → detected before the CRC is even reached.
  save_checkpoint(u, {.trajectories = 1, .accepted = 1, .params = {}}, path);
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 8);
  EXPECT_THROW(load_checkpoint(v, path), FatalError);

  // Wrong geometry → rejected by the header check.
  save_checkpoint(u, {.trajectories = 1, .accepted = 1, .params = {}}, path);
  GaugeFieldD w(geo8());
  EXPECT_THROW(load_checkpoint(w, path), FatalError);

  // checkpoint_exists: magic probe only.
  EXPECT_TRUE(checkpoint_exists(path));
  EXPECT_FALSE(checkpoint_exists(path + ".nope"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeRejectsForkedParams) {
  GaugeFieldD u(geo4());
  u.set_random(SiteRngFactory(720));
  const HmcParams params{.beta = 5.6, .steps = 6, .seed = 31};
  Hmc hmc(u, params);
  HmcCheckpointState state{.trajectories = 2, .accepted = 2,
                           .params = params};
  state.params.seed = 32;  // different campaign
  EXPECT_THROW(resume_hmc(hmc, state), FatalError);
}

TEST(Checkpoint, ResumedRunReproducesUninterruptedStream) {
  const HmcParams params{.beta = 5.6,
                         .trajectory_length = 0.5,
                         .steps = 6,
                         .integrator = Integrator::Omelyan,
                         .seed = 808};
  const int total = 6, cut = 3;
  const std::string path = temp_path("lqcd_ckpt_resume.ckpt");

  // Reference: one uninterrupted campaign.
  GaugeFieldD ua(geo4());
  ua.set_random(SiteRngFactory(809));
  Hmc ha(ua, params);
  std::vector<TrajectoryResult> ref;
  for (int i = 0; i < total; ++i) ref.push_back(ha.trajectory());

  // Interrupted campaign: run `cut`, checkpoint, "crash", resume in a
  // fresh driver over a freshly loaded field, finish.
  GaugeFieldD ub(geo4());
  ub.set_random(SiteRngFactory(809));
  {
    Hmc hb(ub, params);
    for (int i = 0; i < cut; ++i) hb.trajectory();
    save_checkpoint(ub,
                    {.trajectories = hb.trajectories_run(),
                     .accepted = hb.trajectories_accepted(),
                     .params = params},
                    path);
  }
  GaugeFieldD uc(geo4());  // nothing survives the "crash" but the file
  const HmcCheckpointState state = load_checkpoint(uc, path);
  EXPECT_EQ(state.trajectories, static_cast<std::uint64_t>(cut));
  Hmc hc(uc, params);
  resume_hmc(hc, state);
  std::vector<TrajectoryResult> resumed;
  for (int i = cut; i < total; ++i) resumed.push_back(hc.trajectory());

  // The resumed tail is bit-identical to the uninterrupted stream.
  for (int i = 0; i < total - cut; ++i) {
    EXPECT_EQ(resumed[static_cast<std::size_t>(i)].delta_h,
              ref[static_cast<std::size_t>(cut + i)].delta_h)
        << "trajectory " << cut + i;
    EXPECT_EQ(resumed[static_cast<std::size_t>(i)].plaquette,
              ref[static_cast<std::size_t>(cut + i)].plaquette);
    EXPECT_EQ(resumed[static_cast<std::size_t>(i)].accepted,
              ref[static_cast<std::size_t>(cut + i)].accepted);
  }
  // And the final gauge fields agree bit-for-bit.
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      diff += norm2(ua(s, mu) - uc(s, mu));
  EXPECT_EQ(diff, 0.0);
  std::filesystem::remove(path);
}

// --- perf model: resilience surcharge ----------------------------------

TEST(PerfModelResilience, ChecksumAndFaultsChargeCommTime) {
  const Coord local{8, 8, 8, 8};
  const Coord grid{2, 2, 2, 2};
  PerfModelOptions base;
  const DslashCost c0 = model_dslash(local, grid, blue_gene_q(), base);
  EXPECT_EQ(c0.t_resilience, 0.0);

  PerfModelOptions crc = base;
  crc.checksummed_halo = true;
  const DslashCost c1 = model_dslash(local, grid, blue_gene_q(), crc);
  EXPECT_GT(c1.t_resilience, 0.0);
  EXPECT_GT(c1.t_comm, c0.t_comm);

  PerfModelOptions faulty = crc;
  faulty.message_fault_prob = 0.05;
  const DslashCost c2 = model_dslash(local, grid, blue_gene_q(), faulty);
  EXPECT_GT(c2.t_resilience, c1.t_resilience);

  // No network, no surcharge — resilience never taxes local compute.
  const DslashCost single =
      model_dslash(local, {1, 1, 1, 1}, blue_gene_q(), faulty);
  EXPECT_EQ(single.t_resilience, 0.0);
}

}  // namespace
}  // namespace lqcd
