// Tests for lqcd::telemetry: counter atomicity, nested trace accounting,
// JSON report shape, run-to-run determinism of the counter section under
// the virtual cluster, and agreement between the hot-path counters and
// the analytic performance model.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "comm/process_grid.hpp"
#include "dirac/normal.hpp"
#include "gauge/heatbath.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/cg.hpp"
#include "util/telemetry.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge4() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(900));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 901});
    for (int i = 0; i < 3; ++i) hb.sweep();
    return v;
  }();
  return u;
}

void fill_random(std::span<WilsonSpinorD> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
}

TEST(TelemetryCounter, AtomicUnderParallelFor) {
  telemetry::set_enabled(true);
  telemetry::Counter& c = telemetry::counter("test.atomicity");
  c.reset();
  constexpr std::size_t kN = 100000;
  parallel_for(kN, [&](std::size_t) { c.add(1); });
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kN));
  parallel_for(kN, [&](std::size_t) { c.add(3); });
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(4 * kN));
}

TEST(TelemetryCounter, DisabledIsNoop) {
  telemetry::set_enabled(true);
  telemetry::Counter& c = telemetry::counter("test.disabled");
  telemetry::Gauge& g = telemetry::gauge("test.disabled_gauge");
  c.reset();
  g.reset();
  telemetry::set_enabled(false);
  c.add(5);
  g.set(2.5);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0.0);
  {
    telemetry::TraceRegion r("test.disabled_span");
  }
  telemetry::set_enabled(true);
  c.add(5);
  g.set(2.5);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(g.value(), 2.5);
  // The disabled span never entered the tree.
  const std::string rep = telemetry::report_json(false);
  EXPECT_EQ(rep.find("test.disabled_span"), std::string::npos);
}

TEST(TelemetryCounter, StableReferenceAcrossLookups) {
  telemetry::set_enabled(true);
  telemetry::Counter& a = telemetry::counter("test.stable");
  telemetry::Counter& b = telemetry::counter("test.stable");
  EXPECT_EQ(&a, &b);
}

TEST(TelemetryTrace, NestedAccounting) {
  telemetry::set_enabled(true);
  telemetry::reset();
  {
    telemetry::TraceRegion outer("t_outer");
    for (int i = 0; i < 3; ++i) {
      telemetry::TraceRegion inner("t_inner");
    }
  }
  {
    telemetry::TraceRegion outer("t_outer");
  }
  const std::string rep = telemetry::report_json(false);
  // t_outer entered twice, t_inner three times as its child.
  EXPECT_NE(rep.find("{\"name\": \"t_outer\", \"count\": 2, "
                     "\"children\": [\n"),
            std::string::npos)
      << rep;
  EXPECT_NE(rep.find("{\"name\": \"t_inner\", \"count\": 3}"),
            std::string::npos)
      << rep;
}

TEST(TelemetryTrace, SiblingRegionsStaySiblings) {
  telemetry::set_enabled(true);
  telemetry::reset();
  {
    telemetry::TraceRegion outer("t_a");
    { telemetry::TraceRegion x("t_b"); }
    { telemetry::TraceRegion y("t_c"); }
  }
  const std::string rep = telemetry::report_json(false);
  // t_b and t_c are both leaf children of t_a: each serializes with the
  // closed leaf form (no "children" key), and t_a holds both.
  EXPECT_NE(rep.find("{\"name\": \"t_a\", \"count\": 1, \"children\": [\n"),
            std::string::npos)
      << rep;
  EXPECT_NE(rep.find("{\"name\": \"t_b\", \"count\": 1}"),
            std::string::npos)
      << rep;
  EXPECT_NE(rep.find("{\"name\": \"t_c\", \"count\": 1}"),
            std::string::npos)
      << rep;
}

TEST(TelemetryReport, JsonGoldenShape) {
  telemetry::set_enabled(true);
  telemetry::reset();
  telemetry::counter("zz.golden.count").add(7);
  telemetry::gauge("zz.golden.gauge").set(1.5);
  {
    telemetry::TraceRegion r("zz_golden_span");
  }
  const std::string rep = telemetry::report_json(false);
  // Header and section skeleton are exact.
  EXPECT_EQ(rep.rfind("{\n  \"schema\": \"lqcd.telemetry/1\",\n", 0), 0)
      << rep;
  EXPECT_NE(rep.find("  \"counters\": {"), std::string::npos);
  EXPECT_NE(rep.find("  \"gauges\": {"), std::string::npos);
  EXPECT_NE(rep.find("  \"trace\": ["), std::string::npos);
  // Entries serialize with exact, stable formatting.
  EXPECT_NE(rep.find("\"zz.golden.count\": 7"), std::string::npos) << rep;
  EXPECT_NE(rep.find("\"zz.golden.gauge\": 1.5"), std::string::npos) << rep;
  EXPECT_NE(rep.find("{\"name\": \"zz_golden_span\", \"count\": 1}"),
            std::string::npos)
      << rep;
  // include_timings=false omits every wall-clock field.
  EXPECT_EQ(rep.find("\"seconds\""), std::string::npos) << rep;
  // include_timings=true adds them.
  const std::string timed = telemetry::report_json(true);
  EXPECT_NE(timed.find("\"seconds\""), std::string::npos) << timed;
}

TEST(TelemetryReport, ResetZeroesButKeepsReferences) {
  telemetry::set_enabled(true);
  telemetry::Counter& c = telemetry::counter("test.reset");
  c.add(9);
  telemetry::reset();
  EXPECT_EQ(c.value(), 0);
  c.add(2);
  EXPECT_EQ(telemetry::counter("test.reset").value(), 2);
}

// Two identical virtual-cluster solves must produce byte-identical
// counter/gauge/trace-count sections: every counted quantity (iterations,
// messages, bytes, applies) is deterministic under the functional
// cluster, and the serialization order is fixed.
TEST(TelemetryReport, DeterministicAcrossIdenticalRuns) {
  telemetry::set_enabled(true);
  const auto run = [] {
    telemetry::reset();
    DistributedWilsonOperator<double> dist(gauge4(), 0.12,
                                           ProcessGrid({2, 1, 1, 2}));
    NormalOperator<double> a(dist);
    FermionFieldD x(geo4()), b(geo4());
    fill_random(b.span(), 902);
    const SolverParams p{.tol = 1e-8, .max_iterations = 500};
    const SolverResult r = cg_solve<double>(a, x.span(), b.span(), p);
    EXPECT_TRUE(r.converged);
    return telemetry::report_json(false);
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  // And the report actually carries the hot-path counters.
  EXPECT_NE(first.find("\"comm.halo.bytes\""), std::string::npos);
  EXPECT_NE(first.find("\"dslash.site_applies\""), std::string::npos);
  EXPECT_NE(first.find("\"solver.cg.iterations\""), std::string::npos);
}

// The achieved-work counters must agree with the alpha-beta/roofline
// perf model they are diffed against in run reports. With a fully
// decomposed grid and full-spinor double-precision halos, the mapping is
// exact; we still assert the documented 1% tolerance.
TEST(TelemetryReport, CountersMatchPerfModel) {
  telemetry::set_enabled(true);
  const ProcessGrid pg({2, 2, 2, 2});
  DistributedWilsonOperator<double> dist(gauge4(), 0.12, pg);
  FermionFieldD in(geo4()), out(geo4());
  fill_random(in.span(), 903);

  telemetry::Counter& bytes = telemetry::counter("comm.halo.bytes");
  telemetry::Counter& sites = telemetry::counter("dslash.site_applies");
  const std::int64_t b0 = bytes.value();
  const std::int64_t s0 = sites.value();
  constexpr int kApplies = 3;
  for (int i = 0; i < kApplies; ++i) dist.apply(out.span(), in.span());

  PerfModelOptions opt;
  opt.precision_bytes = 8;       // virtual cluster ships doubles
  opt.half_spinor_comm = false;  // ...and full 24-real spinors
  const DslashCost model =
      model_dslash({2, 2, 2, 2}, {2, 2, 2, 2}, blue_gene_q(), opt);

  const double ranks = 16.0;
  const double measured_bytes_per_rank_per_apply =
      static_cast<double>(bytes.value() - b0) / (ranks * kApplies);
  EXPECT_NEAR(measured_bytes_per_rank_per_apply, model.comm_bytes,
              0.01 * model.comm_bytes);

  const double measured_flops =
      static_cast<double>(sites.value() - s0) * kDslashFlopsPerSite;
  const double model_flops = model.flops * ranks * kApplies;
  EXPECT_NEAR(measured_flops, model_flops, 0.01 * model_flops);
}

}  // namespace
}  // namespace lqcd
