// Tests for the communication substrate: process grids, the functional
// virtual cluster (halo exchange correctness, distributed operator
// equivalence) and the analytic machine/performance models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>

#include "comm/halo.hpp"
#include "comm/machine.hpp"
#include "comm/perf_model.hpp"
#include "comm/process_grid.hpp"
#include "dirac/normal.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"

namespace lqcd {
namespace {

TEST(ProcessGrid, RankCoordsBijection) {
  const ProcessGrid pg({2, 3, 1, 4});
  EXPECT_EQ(pg.size(), 24);
  for (int r = 0; r < pg.size(); ++r)
    EXPECT_EQ(pg.rank_of(pg.coords_of(r)), r);
}

TEST(ProcessGrid, NeighborsWrap) {
  const ProcessGrid pg({2, 1, 1, 3});
  const int r = pg.rank_of({1, 0, 0, 2});
  EXPECT_EQ(pg.neighbor(r, 0, +1), pg.rank_of({0, 0, 0, 2}));
  EXPECT_EQ(pg.neighbor(r, 3, +1), pg.rank_of({1, 0, 0, 0}));
  EXPECT_EQ(pg.neighbor(r, 3, -1), pg.rank_of({1, 0, 0, 1}));
  // Self-neighbor in an undecomposed direction.
  EXPECT_EQ(pg.neighbor(r, 1, +1), r);
}

TEST(ProcessGrid, LocalDimsValidation) {
  const ProcessGrid pg({2, 1, 1, 1});
  EXPECT_EQ(pg.local_dims({8, 4, 4, 4})[0], 4);
  EXPECT_THROW(pg.local_dims({6, 4, 4, 4}), Error);  // 3 is odd
  const ProcessGrid pg3({3, 1, 1, 1});
  EXPECT_THROW(pg3.local_dims({8, 4, 4, 4}), Error);  // not divisible
}

TEST(ChooseGrid, ProducesValidDecompositions) {
  for (int nodes : {1, 2, 4, 8, 16, 32, 64}) {
    const Coord global{16, 16, 16, 32};
    ASSERT_TRUE(can_decompose(global, nodes)) << nodes;
    const Coord g = choose_grid(global, nodes);
    int prod = 1;
    for (int mu = 0; mu < Nd; ++mu) {
      EXPECT_EQ(global[mu] % g[mu], 0);
      EXPECT_EQ((global[mu] / g[mu]) % 2, 0);
      prod *= g[mu];
    }
    EXPECT_EQ(prod, nodes);
  }
}

TEST(ChooseGrid, RejectsImpossible) {
  EXPECT_FALSE(can_decompose({4, 4, 4, 4}, 1024));  // local would be odd
  EXPECT_FALSE(can_decompose({8, 8, 8, 8}, 11));    // large prime
  EXPECT_THROW(choose_grid({4, 4, 4, 4}, 1024), Error);
}

TEST(ChooseGrid, SplitsLongestDirectionFirst) {
  const Coord g = choose_grid({8, 8, 8, 32}, 4);
  EXPECT_EQ(g[3], 4);  // time dominates
}

TEST(HaloLatticeTest, VolumesAndIndexing) {
  const HaloLattice h({4, 4, 2, 6});
  EXPECT_EQ(h.interior_volume(), 4 * 4 * 2 * 6);
  EXPECT_EQ(h.extended_volume(), 6 * 6 * 4 * 8);
  EXPECT_EQ(h.face_volume(2), 4 * 4 * 6);
  // Interior coords round-trip through ext_index uniquely.
  std::vector<char> seen(static_cast<std::size_t>(h.extended_volume()), 0);
  for (std::int64_t i = 0; i < h.interior_volume(); ++i) {
    const Coord x = h.interior_coords(i);
    const std::int64_t e = h.ext_index(x);
    ASSERT_GE(e, 0);
    ASSERT_LT(e, h.extended_volume());
    EXPECT_EQ(seen[static_cast<std::size_t>(e)], 0);
    seen[static_cast<std::size_t>(e)] = 1;
  }
}

TEST(HaloLatticeTest, RejectsThinDomains) {
  EXPECT_THROW(HaloLattice({1, 4, 4, 4}), Error);
}

const LatticeGeometry& geo8() {
  static LatticeGeometry geo({8, 4, 4, 8});
  return geo;
}

// Encode global coordinates in the field value for exchange checks.
WilsonSpinorD coord_tag(const Coord& x) {
  WilsonSpinorD s{};
  s.s[0].c[0] = Cplxd(x[0] + 10.0 * x[1], x[2] + 10.0 * x[3]);
  return s;
}

TEST(VirtualClusterTest, ScatterGatherRoundTrip) {
  const ProcessGrid pg(choose_grid(geo8().dims(), 4));
  VirtualCluster<double> vc(geo8(), pg);
  FermionFieldD f(geo8()), g(geo8());
  for (std::int64_t s = 0; s < geo8().volume(); ++s)
    f[s] = coord_tag(geo8().coords(s));
  auto ranks = vc.make_fermion();
  vc.scatter(ranks, f.span());
  vc.gather(g.span(), ranks);
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo8().volume(); ++s)
    diff += norm2(f[s] - g[s]);
  EXPECT_EQ(diff, 0.0);
}

TEST(VirtualClusterTest, ExchangeFillsGhostsWithWrappedNeighbors) {
  const ProcessGrid pg({2, 1, 1, 2});
  VirtualCluster<double> vc(geo8(), pg);
  FermionFieldD f(geo8());
  for (std::int64_t s = 0; s < geo8().volume(); ++s)
    f[s] = coord_tag(geo8().coords(s));
  auto ranks = vc.make_fermion();
  vc.scatter(ranks, f.span());
  vc.exchange(ranks);

  const HaloLattice& halo = vc.halo();
  for (int r = 0; r < vc.ranks(); ++r) {
    const auto& loc = ranks[static_cast<std::size_t>(r)];
    // Check all 8 ghost faces against wrapped global coordinates.
    for (int mu = 0; mu < Nd; ++mu) {
      for (std::int64_t i = 0; i < halo.interior_volume(); ++i) {
        Coord xl = halo.interior_coords(i);
        if (xl[mu] != 0) continue;
        for (int dir = -1; dir <= 1; dir += 2) {
          Coord ghost = xl;
          ghost[mu] = dir > 0 ? halo.local_dims()[mu] : -1;
          const Coord xg = vc.global_coords(r, ghost);
          const WilsonSpinorD got =
              loc[static_cast<std::size_t>(halo.ext_index(ghost))];
          ASSERT_LT(norm2(got - coord_tag(xg)), 1e-28)
              << "rank " << r << " mu " << mu << " dir " << dir;
        }
      }
    }
  }
}

TEST(HalfCodec, EncodeDecodeRoundTripBounded) {
  // Per-component error of the wire codec is bounded by amax / 2^15 (the
  // scale rides along as float, so decode(encode(x)) is exact in the
  // scale and off by at most half an int16 step per component).
  SiteRngFactory rngs(4100);
  for (std::uint64_t rep = 0; rep < 64; ++rep) {
    CounterRng rng = rngs.make(rep);
    WilsonSpinorD psi;
    const double scale = std::exp(rng.uniform(-12, 12));
    double amax = 0.0;
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c) {
        psi.s[s].c[c] = Cplxd(rng.gaussian() * scale,
                              rng.gaussian() * scale);
        amax = std::max({amax, std::abs(psi.s[s].c[c].re),
                         std::abs(psi.s[s].c[c].im)});
      }
    std::byte wire[detail::kHalfSiteBytes];
    detail::encode_half_site(wire, psi);
    WilsonSpinorD back;
    detail::decode_half_site(back, wire);
    const double bound =
        static_cast<double>(static_cast<float>(amax)) / 32767.0;
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c) {
        EXPECT_LE(std::abs(back.s[s].c[c].re - psi.s[s].c[c].re), bound);
        EXPECT_LE(std::abs(back.s[s].c[c].im - psi.s[s].c[c].im), bound);
      }
  }
}

TEST(HalfCodec, ZeroSiteEncodesToZeroBytes) {
  // The Schur other-parity invariant: an all-zero site must ship as
  // all-zero bytes (scale 0, no 0/0) and decode back to exactly zero.
  const WilsonSpinorD z{};
  std::byte wire[detail::kHalfSiteBytes];
  std::memset(wire, 0xff, sizeof(wire));
  detail::encode_half_site(wire, z);
  for (std::size_t i = 0; i < detail::kHalfSiteBytes; ++i)
    EXPECT_EQ(wire[i], std::byte{0});
  WilsonSpinorD back;
  detail::decode_half_site(back, wire);
  EXPECT_EQ(norm2(back), 0.0);
}

TEST(HalfCodec, PackUnpackFaceRoundTripBothParities) {
  // pack_face_half -> unpack_face_half across every direction, with the
  // source field populated on one parity only (the Schur layout): live
  // sites land in the ghost plane within the block-float bound and the
  // masked parity stays exactly zero.
  const HaloLattice halo({4, 4, 2, 6});
  const auto ext = static_cast<std::size_t>(halo.extended_volume());
  for (int parity = 0; parity < 2; ++parity) {
    aligned_vector<WilsonSpinorD> src(ext), dst(ext);
    SiteRngFactory rngs(4200 + static_cast<std::uint64_t>(parity));
    for (std::int64_t i = 0; i < halo.interior_volume(); ++i) {
      const Coord x = halo.interior_coords(i);
      if ((x[0] + x[1] + x[2] + x[3]) % 2 != parity) continue;
      CounterRng rng = rngs.make(static_cast<std::uint64_t>(i));
      WilsonSpinorD& s = src[static_cast<std::size_t>(halo.ext_index(x))];
      for (int sp = 0; sp < Ns; ++sp)
        for (int c = 0; c < Nc; ++c)
          s.s[sp].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
    }
    for (int mu = 0; mu < Nd; ++mu) {
      // Ship the x[mu] = 0 plane into the far ghost plane, the way the
      // exchange fills a periodic neighbor's ghosts.
      std::vector<std::byte> wire;
      detail::pack_face_half(wire, src, halo, mu, 0);
      ASSERT_EQ(wire.size(), static_cast<std::size_t>(halo.face_volume(mu)) *
                                 detail::kHalfSiteBytes);
      detail::unpack_face_half(dst, std::span<const std::byte>(wire), halo, mu,
                       halo.local_dims()[mu]);
      for (std::int64_t i = 0; i < halo.interior_volume(); ++i) {
        Coord x = halo.interior_coords(i);
        if (x[mu] != 0) continue;
        const WilsonSpinorD& orig =
            src[static_cast<std::size_t>(halo.ext_index(x))];
        Coord g = x;
        g[mu] = halo.local_dims()[mu];
        const WilsonSpinorD& got =
            dst[static_cast<std::size_t>(halo.ext_index(g))];
        double amax = 0.0;
        for (int sp = 0; sp < Ns; ++sp)
          for (int c = 0; c < Nc; ++c)
            amax = std::max({amax, std::abs(orig.s[sp].c[c].re),
                             std::abs(orig.s[sp].c[c].im)});
        if (amax == 0.0) {
          EXPECT_EQ(norm2(got), 0.0) << "masked parity must stay zero";
          continue;
        }
        const double bound = amax / 32767.0;
        for (int sp = 0; sp < Ns; ++sp)
          for (int c = 0; c < Nc; ++c) {
            EXPECT_LE(std::abs(got.s[sp].c[c].re - orig.s[sp].c[c].re),
                      bound);
            EXPECT_LE(std::abs(got.s[sp].c[c].im - orig.s[sp].c[c].im),
                      bound);
          }
      }
    }
  }
}

TEST(VirtualClusterTest, HalfExchangeGhostsTrackFullWithinQuantization) {
  const ProcessGrid pg({2, 1, 1, 2});
  VirtualCluster<double> vc(geo8(), pg);
  FermionFieldD f(geo8());
  SiteRngFactory rngs(4300);
  for (std::int64_t s = 0; s < geo8().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    for (int sp = 0; sp < Ns; ++sp)
      for (int c = 0; c < Nc; ++c)
        f[s].s[sp].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  auto full = vc.make_fermion();
  vc.scatter(full, f.span());
  auto half = full;  // same interiors
  vc.exchange(full);

  vc.set_halo_precision(HaloPrecision::kHalf);
  vc.stats().reset();
  vc.exchange(half);
  EXPECT_EQ(vc.stats().compressed_frames,
            static_cast<std::int64_t>(pg.size()) * 2 * Nd);
  EXPECT_EQ(vc.stats().full_equiv_bytes,
            static_cast<std::int64_t>(pg.size()) *
                detail::face_payload_bytes<WilsonSpinorD>(vc.halo(),
                                                  HaloPrecision::kFull));

  double err = 0.0, ref = 0.0;
  for (int r = 0; r < vc.ranks(); ++r) {
    const auto& a = full[static_cast<std::size_t>(r)];
    const auto& b = half[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < a.size(); ++i) {
      err += norm2(a[i] - b[i]);
      ref += norm2(a[i]);
    }
  }
  const double rel = std::sqrt(err / ref);
  EXPECT_GT(rel, 0.0);    // the wire really quantized
  EXPECT_LT(rel, 1e-4);   // ...at the int16 block-float level
}

TEST(VirtualClusterTest, WireEmulationChargesModeledDelay) {
  // set_wire_emulation prices every wire byte at the given bandwidth:
  // the slept time lands in modeled_delay_us and matches the counter
  // arithmetic exactly; switching it off stops the charging.
  const ProcessGrid pg({2, 1, 1, 2});
  VirtualCluster<double> vc(geo8(), pg);
  auto ranks = vc.make_fermion();
  const double bps = 1e12;  // fast enough that the sleep is negligible
  vc.set_wire_emulation(bps);
  EXPECT_EQ(vc.wire_emulation(), bps);
  vc.stats().reset();
  vc.exchange(ranks);
  const double expect_us =
      static_cast<double>(vc.stats().wire_bytes) / bps * 1e6;
  EXPECT_GT(vc.stats().modeled_delay_us, 0.0);
  EXPECT_NEAR(vc.stats().modeled_delay_us, expect_us, 1e-9);
  vc.set_wire_emulation(0.0);
  vc.stats().reset();
  vc.exchange(ranks);
  EXPECT_EQ(vc.stats().modeled_delay_us, 0.0);
}

TEST(VirtualClusterTest, CommStatsCountMessagesAndBytes) {
  const ProcessGrid pg({2, 1, 1, 2});
  VirtualCluster<double> vc(geo8(), pg);
  auto ranks = vc.make_fermion();
  vc.stats().reset();
  vc.exchange(ranks);
  // 4 ranks x 8 faces.
  EXPECT_EQ(vc.stats().messages, 4 * 8);
  EXPECT_EQ(vc.stats().exchanges, 1);
  // Bytes: per rank, 2 faces per direction x face sites x sizeof(spinor).
  std::int64_t want = 0;
  for (int mu = 0; mu < Nd; ++mu)
    want += 2 * vc.halo().face_volume(mu) *
            static_cast<std::int64_t>(sizeof(WilsonSpinorD));
  EXPECT_EQ(vc.stats().bytes, 4 * want);
}

GaugeFieldD thermal8(std::uint64_t seed) {
  GaugeFieldD u(geo8());
  u.set_random(SiteRngFactory(seed));
  Heatbath hb(u, {.beta = 5.9, .or_per_hb = 1, .seed = seed + 1});
  for (int i = 0; i < 3; ++i) hb.sweep();
  return u;
}

class DistributedOpGrid : public ::testing::TestWithParam<Coord> {};

TEST_P(DistributedOpGrid, MatchesSingleDomainOperator) {
  const GaugeFieldD u = thermal8(300);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa, ProcessGrid(GetParam()));

  FermionFieldD in(geo8()), a(geo8()), b(geo8());
  SiteRngFactory rngs(301);
  for (std::int64_t s = 0; s < geo8().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    for (int sp = 0; sp < Ns; ++sp)
      for (int c = 0; c < Nc; ++c)
        in[s].s[sp].c[c] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  single.apply(a.span(), in.span());
  dist.apply(b.span(), in.span());
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo8().volume(); ++s)
    diff += norm2(a[s] - b[s]);
  // Same arithmetic in the same order: bit-for-bit equality.
  EXPECT_EQ(diff, 0.0) << "grid " << GetParam()[0] << GetParam()[1]
                       << GetParam()[2] << GetParam()[3];
}

INSTANTIATE_TEST_SUITE_P(
    Grids, DistributedOpGrid,
    ::testing::Values(Coord{1, 1, 1, 1}, Coord{2, 1, 1, 1},
                      Coord{1, 1, 1, 2}, Coord{2, 1, 1, 2},
                      Coord{2, 2, 1, 2}, Coord{2, 2, 2, 2},
                      Coord{4, 1, 1, 4}));

TEST(DistributedOp, SolverIterationsIdenticalToSingleDomain) {
  // CG through the virtual cluster must reproduce the single-domain
  // iteration history exactly — decomposition is algorithm-invisible.
  const GaugeFieldD u = thermal8(302);
  const double kappa = 0.12;
  WilsonOperator<double> single(u, kappa);
  DistributedWilsonOperator<double> dist(u, kappa,
                                         ProcessGrid({2, 1, 1, 2}));
  NormalOperator<double> n_single(single);
  NormalOperator<double> n_dist(dist);

  FermionFieldD b(geo8()), x1(geo8()), x2(geo8());
  SiteRngFactory rngs(303);
  for (std::int64_t s = 0; s < geo8().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    b[s].s[0].c[0] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  SolverParams p{.tol = 1e-10, .max_iterations = 2000};
  const SolverResult r1 = cg_solve<double>(n_single, x1.span(), b.span(), p);
  const SolverResult r2 = cg_solve<double>(n_dist, x2.span(), b.span(), p);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);
  double diff = 0.0;
  for (std::int64_t s = 0; s < geo8().volume(); ++s)
    diff += norm2(x1[s] - x2[s]);
  EXPECT_EQ(diff, 0.0);
}

TEST(MachineModels, PresetsSane) {
  for (const auto& m : {blue_gene_q(), k_computer(), generic_cluster()}) {
    EXPECT_GT(m.node_gflops_double, 0.0);
    EXPECT_GT(m.node_gflops_single, m.node_gflops_double * 0.9);
    EXPECT_GT(m.mem_bw_gbs, 0.0);
    EXPECT_GT(m.link_bw_gbs, 0.0);
    EXPECT_GT(m.link_latency_us, 0.0);
    EXPECT_GT(m.compute_efficiency, 0.0);
    EXPECT_LE(m.compute_efficiency, 1.0);
  }
  EXPECT_EQ(machine_by_name("bgq").name, blue_gene_q().name);
  EXPECT_THROW(machine_by_name("roadrunner"), Error);
}

TEST(PerfModel, NoCommOnSingleNode) {
  PerfModelOptions opt;
  const DslashCost c =
      model_dslash({8, 8, 8, 8}, {1, 1, 1, 1}, blue_gene_q(), opt);
  EXPECT_EQ(c.messages, 0);
  EXPECT_EQ(c.comm_bytes, 0.0);
  EXPECT_EQ(c.t_comm, 0.0);
  EXPECT_GT(c.t_compute, 0.0);
  EXPECT_DOUBLE_EQ(c.t_total, c.t_compute);
}

TEST(PerfModel, CommGrowsWithDecomposedDirections) {
  PerfModelOptions opt;
  const DslashCost c1 =
      model_dslash({8, 8, 8, 8}, {2, 1, 1, 1}, blue_gene_q(), opt);
  const DslashCost c4 =
      model_dslash({8, 8, 8, 8}, {2, 2, 2, 2}, blue_gene_q(), opt);
  EXPECT_GT(c4.comm_bytes, c1.comm_bytes);
  EXPECT_GT(c4.messages, c1.messages);
}

TEST(PerfModel, HalfSpinorCommHalvesBytes) {
  PerfModelOptions full;
  full.half_spinor_comm = false;
  PerfModelOptions half;
  half.half_spinor_comm = true;
  const DslashCost cf =
      model_dslash({8, 8, 8, 8}, {2, 2, 2, 2}, blue_gene_q(), full);
  const DslashCost ch =
      model_dslash({8, 8, 8, 8}, {2, 2, 2, 2}, blue_gene_q(), half);
  EXPECT_NEAR(ch.comm_bytes, cf.comm_bytes / 2.0, 1.0);
}

TEST(PerfModel, FloatFasterThanDouble) {
  PerfModelOptions d;
  d.precision_bytes = 8;
  PerfModelOptions f;
  f.precision_bytes = 4;
  const DslashCost cd =
      model_dslash({8, 8, 8, 8}, {1, 1, 1, 1}, blue_gene_q(), d);
  const DslashCost cf =
      model_dslash({8, 8, 8, 8}, {1, 1, 1, 1}, blue_gene_q(), f);
  EXPECT_LT(cf.t_compute, cd.t_compute);
}

TEST(PerfModel, StrongScalingShape) {
  PerfModelOptions opt;
  const std::vector<int> nodes = {16, 64, 256, 1024, 4096};
  const auto pts =
      strong_scaling({48, 48, 48, 96}, blue_gene_q(), opt, nodes);
  ASSERT_GE(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    // Total throughput rises with nodes, time per iteration falls.
    EXPECT_GT(pts[i].sustained_tflops, pts[i - 1].sustained_tflops);
    EXPECT_LT(pts[i].cost.t_iter, pts[i - 1].cost.t_iter);
    // Efficiency decays monotonically (surface/volume + allreduce).
    EXPECT_LE(pts[i].efficiency, pts[i - 1].efficiency + 1e-12);
    // Comm fraction grows.
    EXPECT_GE(pts[i].cost.comm_fraction,
              pts[i - 1].cost.comm_fraction - 1e-12);
  }
  EXPECT_NEAR(pts.front().efficiency, 1.0, 1e-12);
}

TEST(PerfModel, WeakScalingNearFlat) {
  PerfModelOptions opt;
  const std::vector<int> nodes = {16, 128, 1024, 8192, 65536};
  const auto pts = weak_scaling({16, 16, 16, 16}, blue_gene_q(), opt, nodes);
  ASSERT_EQ(pts.size(), nodes.size());
  // Weak scaling on a torus: efficiency stays high out to huge machines;
  // only the log(N) allreduce bites.
  for (const auto& pt : pts) EXPECT_GT(pt.efficiency, 0.8);
  EXPECT_GT(pts.back().sustained_tflops,
            1000.0 * pts.front().sustained_tflops / nodes.back() * 16);
}

TEST(PerfModel, StrongScalingSkipsImpossibleNodeCounts) {
  PerfModelOptions opt;
  const auto pts = strong_scaling({8, 8, 8, 16}, blue_gene_q(), opt,
                                  {1, 2, 7, 4096});
  // 7 has no factorization; 4096 would need odd local extents.
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].nodes, 1);
  EXPECT_EQ(pts[1].nodes, 2);
}

TEST(PerfModel, CgIterationIncludesAllreduce) {
  PerfModelOptions opt;
  const IterationCost c1 =
      model_cg_iteration({8, 8, 8, 8}, {2, 2, 2, 2}, 16, blue_gene_q(), opt);
  const IterationCost c2 = model_cg_iteration({8, 8, 8, 8}, {2, 2, 2, 2},
                                              65536, blue_gene_q(), opt);
  EXPECT_GT(c2.t_allreduce, c1.t_allreduce);
  EXPECT_GT(c2.t_iter, c1.t_iter);
}

TEST(PerfModel, SapTradesCommForLocalWork) {
  PerfModelOptions opt;
  const Coord local{4, 4, 4, 4};
  const Coord grid{8, 8, 8, 8};
  const int nodes = 4096;
  const IterationCost cg =
      model_cg_iteration(local, grid, nodes, blue_gene_q(), opt);
  const IterationCost sap = model_sap_gcr_iteration(
      local, grid, nodes, blue_gene_q(), opt, 4, 4);
  // Per iteration SAP does more local flops but communicates relatively
  // less of its time.
  EXPECT_GT(sap.dslash.flops, cg.dslash.flops);
  EXPECT_LT(sap.comm_fraction, cg.comm_fraction);
}

TEST(PerfModel, CalibrationPositive) {
  const double c = calibrate_node(generic_cluster(), 8);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1e4);
}

}  // namespace
}  // namespace lqcd
