// Tests for the SoA lane-vectorized path: the Simd<T, W> scalar type, the
// VectorLattice site packing, and — the central claim — that the
// lane-packed dslash/operators are BIT-IDENTICAL to the scalar reference
// at every supported width (W in {1, 4, 8}, float and double, both
// parities, wrap-heavy geometries), with a scalar fallback when the
// geometry does not lane-decompose.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "dirac/compressed.hpp"
#include "dirac/eo.hpp"
#include "dirac/simd_wilson.hpp"
#include "dirac/wilson.hpp"
#include "gauge/gauge_field.hpp"
#include "lattice/vector_lattice.hpp"
#include "linalg/blas.hpp"
#include "linalg/lanes.hpp"
#include "linalg/simd.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace lqcd {
namespace {

template <typename T>
void fill_random(std::span<WilsonSpinor<T>> f, std::uint64_t seed) {
  SiteRngFactory rngs(seed);
  for (std::size_t i = 0; i < f.size(); ++i) {
    CounterRng rng = rngs.make(i);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        f[i].s[s].c[c] = Cplx<T>(static_cast<T>(rng.gaussian()),
                                 static_cast<T>(rng.gaussian()));
  }
}

template <typename T>
int count_mismatches(std::span<const WilsonSpinor<T>> a,
                     std::span<const WilsonSpinor<T>> b) {
  int bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        if (!(a[i].s[s].c[c] == b[i].s[s].c[c])) ++bad;
  return bad;
}

template <typename T>
std::span<const WilsonSpinor<T>> cspan(
    const aligned_vector<WilsonSpinor<T>>& v) {
  return {v.data(), v.size()};
}
template <typename T>
std::span<WilsonSpinor<T>> span(aligned_vector<WilsonSpinor<T>>& v) {
  return {v.data(), v.size()};
}

// --- Simd scalar type ------------------------------------------------------

TEST(Simd, LaneArithmeticMatchesScalar) {
  Simd<float, 4> a, b;
  const float av[4] = {1.5f, -2.25f, 0.0f, 3.0f};
  const float bv[4] = {0.5f, 4.0f, -1.0f, 2.0f};
  for (int l = 0; l < 4; ++l) {
    a.set_lane(l, av[l]);
    b.set_lane(l, bv[l]);
  }
  const Simd<float, 4> s = a + b, d = a - b, p = a * b, n = -a;
  for (int l = 0; l < 4; ++l) {
    EXPECT_EQ(s.lane(l), av[l] + bv[l]);
    EXPECT_EQ(d.lane(l), av[l] - bv[l]);
    EXPECT_EQ(p.lane(l), av[l] * bv[l]);
    EXPECT_EQ(n.lane(l), -av[l]);
  }
}

TEST(Simd, DefaultIsZeroAndBroadcastFills) {
  const Simd<double, 8> z;
  const Simd<double, 8> b(2.5);
  const Simd<double, 8> i(3);  // int broadcast, as in T(pre) phase factors
  for (int l = 0; l < 8; ++l) {
    EXPECT_EQ(z.lane(l), 0.0);
    EXPECT_EQ(b.lane(l), 2.5);
    EXPECT_EQ(i.lane(l), 3.0);
  }
}

TEST(Simd, ShuffleAppliesPermutation) {
  Simd<float, 4> a;
  for (int l = 0; l < 4; ++l) a.set_lane(l, static_cast<float>(l + 1));
  const int perm[4] = {1, 2, 3, 0};
  const Simd<float, 4> r = shuffle(a, perm);
  for (int l = 0; l < 4; ++l)
    EXPECT_EQ(r.lane(l), static_cast<float>(perm[l] + 1));
}

TEST(Simd, Traits) {
  static_assert(is_simd_v<Simd<float, 4>>);
  static_assert(!is_simd_v<float>);
  static_assert(simd_width_v<Simd<double, 8>> == 8);
  static_assert(simd_width_v<double> == 1);
  static_assert(std::is_same_v<simd_scalar_t<Simd<float, 4>>, float>);
  static_assert(std::is_same_v<simd_scalar_t<float>, float>);
  // W = 1 must work as the portable fallback.
  Simd<double, 1> one(7.0);
  EXPECT_EQ((one * one).lane(0), 49.0);
}

// The complex kernels instantiate over Simd and must produce, per lane,
// exactly the scalar arithmetic.
TEST(Simd, CplxKernelsBitwisePerLane) {
  constexpr int W = 4;
  Cplx<float> as[W], bs[W], accs[W];
  SiteRngFactory rngs(11);
  CounterRng rng = rngs.make(0);
  for (int l = 0; l < W; ++l) {
    as[l] = {static_cast<float>(rng.gaussian()),
             static_cast<float>(rng.gaussian())};
    bs[l] = {static_cast<float>(rng.gaussian()),
             static_cast<float>(rng.gaussian())};
    accs[l] = {static_cast<float>(rng.gaussian()),
               static_cast<float>(rng.gaussian())};
  }
  Cplx<Simd<float, W>> a, b, acc;
  for (int l = 0; l < W; ++l) {
    insert_lane(a, l, as[l]);
    insert_lane(b, l, bs[l]);
    insert_lane(acc, l, accs[l]);
  }
  const Cplx<Simd<float, W>> prod = a * b;
  fma_conj_acc(acc, a, b);
  for (int l = 0; l < W; ++l) {
    Cplx<float> acc_ref = accs[l];
    fma_conj_acc(acc_ref, as[l], bs[l]);
    EXPECT_EQ(extract_lane(prod, l), as[l] * bs[l]);
    EXPECT_EQ(extract_lane(acc, l), acc_ref);
  }
}

// --- VectorLattice ---------------------------------------------------------

void check_mapping(const Coord& dims, int width) {
  const LatticeGeometry geo(dims);
  auto vl = VectorLattice::make(geo, width);
  ASSERT_TRUE(vl.has_value()) << "expected decomposable geometry";
  EXPECT_EQ(vl->inner_sites() * width, geo.volume());

  // Exact cover: every scalar site appears in exactly one (vo, lane).
  std::vector<int> seen(static_cast<std::size_t>(geo.volume()), 0);
  for (std::int64_t vo = 0; vo < vl->inner_sites(); ++vo)
    for (int l = 0; l < width; ++l) {
      const std::int64_t s = vl->site_of(vo, l);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, geo.volume());
      seen[static_cast<std::size_t>(s)]++;
      // All lanes of a vector site share the outer parity.
      EXPECT_EQ(geo.parity_of(s), vl->outer_geometry().parity_of(vo));
      // gather() is the inverse map.
      EXPECT_EQ(vl->gather()[static_cast<std::size_t>(s)],
                vo * width + l);
    }
  for (int c : seen) EXPECT_EQ(c, 1);

  // Neighbor resolution: fwd/bwd land in the extended range, and
  // non-ghost neighbors agree lane-by-lane with the scalar tables.
  for (std::int64_t vo = 0; vo < vl->inner_sites(); ++vo)
    for (int mu = 0; mu < Nd; ++mu) {
      const std::int64_t f = vl->fwd(vo, mu);
      const std::int64_t b = vl->bwd(vo, mu);
      ASSERT_GE(f, 0);
      ASSERT_LT(f, vl->total_sites());
      ASSERT_GE(b, 0);
      ASSERT_LT(b, vl->total_sites());
      if (f < vl->inner_sites()) {
        for (int l = 0; l < width; ++l)
          EXPECT_EQ(vl->site_of(f, l), geo.fwd(vl->site_of(vo, l), mu));
      }
      if (b < vl->inner_sites()) {
        for (int l = 0; l < width; ++l)
          EXPECT_EQ(vl->site_of(b, l), geo.bwd(vl->site_of(vo, l), mu));
      }
    }
}

TEST(VectorLattice, Mapping4x4x4x4W4) { check_mapping({4, 4, 4, 4}, 4); }
TEST(VectorLattice, Mapping4x4x4x4W8) { check_mapping({4, 4, 4, 4}, 8); }
TEST(VectorLattice, Mapping8x4x4x6W4) { check_mapping({8, 4, 4, 6}, 4); }
TEST(VectorLattice, MappingW1IsIdentityLayout) {
  const LatticeGeometry geo({4, 4, 4, 4});
  auto vl = VectorLattice::make(geo, 1);
  ASSERT_TRUE(vl.has_value());
  EXPECT_EQ(vl->ghost_sites(), 0);
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    EXPECT_EQ(vl->site_of(s, 0), s);
}

TEST(VectorLattice, RejectsUndecomposableGeometries) {
  // 2^4: any split would make an outer extent odd (=1). This is the
  // "remainder" case of this layout — four even extents make volume % W
  // == 0 vacuous for W <= 16, so indivisible extents are what triggers
  // the scalar fallback.
  EXPECT_FALSE(VectorLattice::supports(LatticeGeometry({2, 2, 2, 2}), 2));
  EXPECT_FALSE(VectorLattice::supports(LatticeGeometry({2, 2, 2, 2}), 8));
  // 6 = 2*3: one factor of 2 is fine (outer 3 is odd — not fine).
  EXPECT_FALSE(VectorLattice::supports(LatticeGeometry({6, 2, 2, 2}), 2));
  // Non-power-of-two widths are not supported.
  EXPECT_FALSE(VectorLattice::supports(LatticeGeometry({8, 8, 8, 8}), 3));
  // Sanity: the workhorse geometries are supported.
  EXPECT_TRUE(VectorLattice::supports(LatticeGeometry({4, 4, 4, 4}), 8));
  EXPECT_TRUE(VectorLattice::supports(LatticeGeometry({8, 8, 8, 8}), 8));
}

TEST(VectorLattice, PackUnpackRoundTrip) {
  constexpr int W = 4;
  const LatticeGeometry geo({4, 4, 4, 4});
  auto vl = VectorLattice::make(geo, W);
  ASSERT_TRUE(vl.has_value());
  aligned_vector<WilsonSpinor<float>> in(
      static_cast<std::size_t>(geo.volume())),
      back(static_cast<std::size_t>(geo.volume()));
  fill_random(span(in), 3);
  aligned_vector<WilsonSpinor<Simd<float, W>>> packed(
      static_cast<std::size_t>(vl->total_sites()));
  pack_sites<float, W>(*vl, cspan(in), span(packed));
  unpack_sites<float, W>(*vl, cspan(packed), span(back));
  EXPECT_EQ(count_mismatches(cspan(in), cspan(back)), 0);

  // Parity halves round-trip into the matching blocks.
  const auto hv = static_cast<std::size_t>(geo.half_volume());
  for (int p = 0; p < 2; ++p) {
    aligned_vector<WilsonSpinor<float>> half(hv), half_back(hv);
    fill_random(span(half), 17 + static_cast<std::uint64_t>(p));
    pack_parity<float, W>(*vl, cspan(half), span(packed), p);
    unpack_parity<float, W>(*vl, cspan(packed), span(half_back), p);
    EXPECT_EQ(count_mismatches(cspan(half), cspan(half_back)), 0);
  }
}

// --- bitwise dslash equivalence --------------------------------------------

template <typename T, int W>
void check_dslash_bitwise(const Coord& dims) {
  const LatticeGeometry geo(dims);
  auto vl = VectorLattice::make(geo, W);
  ASSERT_TRUE(vl.has_value());
  GaugeField<T> u(geo);
  u.set_random(SiteRngFactory(5));
  const GaugeField<T> links = make_fermion_links(u, TimeBoundary::Antiperiodic);

  const auto vol = static_cast<std::size_t>(geo.volume());
  aligned_vector<WilsonSpinor<T>> in(vol), ref(vol), got(vol);
  fill_random(span(in), 23);

  const VectorGaugeField<T, W> vg(*vl, links);
  aligned_vector<WilsonSpinor<Simd<T, W>>> vin(
      static_cast<std::size_t>(vl->total_sites())),
      vout(static_cast<std::size_t>(vl->total_sites()));

  // Full dslash.
  dslash_full(span(ref), cspan(in), links);
  pack_sites<T, W>(*vl, cspan(in), span(vin));
  vl->fill_ghosts(span(vin));
  simd_dslash_full<T, W>(span(vout), cspan(vin), vg);
  unpack_sites<T, W>(*vl, cspan(vout), span(got));
  EXPECT_EQ(count_mismatches(cspan(ref), cspan(got)), 0)
      << "full dslash not bitwise at W=" << W;

  // Parity dslash, both targets. The scalar kernel writes only the
  // target block, so compare block-wise via parity unpack.
  const auto hv = static_cast<std::size_t>(geo.half_volume());
  for (int p = 0; p < 2; ++p) {
    dslash_parity(span(ref), cspan(in), links, p);
    vl->fill_ghosts(span(vin), 1 - p);
    simd_dslash_parity<T, W>(span(vout), cspan(vin), vg, p);
    aligned_vector<WilsonSpinor<T>> ref_half(hv), got_half(hv);
    for (std::size_t i = 0; i < hv; ++i)
      ref_half[i] = ref[(p == 0 ? 0 : hv) + i];
    unpack_parity<T, W>(*vl, cspan(vout), span(got_half), p);
    EXPECT_EQ(count_mismatches(cspan(ref_half), cspan(got_half)), 0)
        << "parity " << p << " dslash not bitwise at W=" << W;
  }
}

TEST(SimdDslash, BitwiseFloatW1) {
  check_dslash_bitwise<float, 1>({4, 4, 4, 4});
}
TEST(SimdDslash, BitwiseFloatW4) {
  check_dslash_bitwise<float, 4>({4, 4, 4, 4});
}
TEST(SimdDslash, BitwiseFloatW8) {
  check_dslash_bitwise<float, 8>({4, 4, 4, 4});
}
TEST(SimdDslash, BitwiseDoubleW1) {
  check_dslash_bitwise<double, 1>({4, 4, 4, 4});
}
TEST(SimdDslash, BitwiseDoubleW4) {
  check_dslash_bitwise<double, 4>({4, 4, 4, 4});
}
TEST(SimdDslash, BitwiseDoubleW8) {
  check_dslash_bitwise<double, 8>({4, 4, 4, 4});
}
// Mixed extents exercise asymmetric splits and wrap faces in several
// directions at once.
TEST(SimdDslash, BitwiseFloatW8Asymmetric) {
  check_dslash_bitwise<float, 8>({8, 4, 4, 6});
}

// --- operators behind the LinearOperator interface -------------------------

template <typename T, int W>
void check_wilson_operator(const Coord& dims, bool expect_active) {
  const LatticeGeometry geo(dims);
  GaugeField<T> u(geo);
  u.set_random(SiteRngFactory(9));
  const double kappa = 0.13;
  const WilsonOperator<T> ref_op(u, kappa);
  const SimdWilsonOperator<T, W> simd_op(u, kappa);
  EXPECT_EQ(simd_op.simd_active(), expect_active);
  EXPECT_EQ(simd_op.vector_size(), ref_op.vector_size());

  const auto vol = static_cast<std::size_t>(geo.volume());
  aligned_vector<WilsonSpinor<T>> in(vol), ref(vol), got(vol);
  fill_random(span(in), 31);
  ref_op.apply(span(ref), cspan(in));
  simd_op.apply(span(got), cspan(in));
  EXPECT_EQ(count_mismatches(cspan(ref), cspan(got)), 0);
}

TEST(SimdWilsonOperator, BitwiseFloatW4) {
  check_wilson_operator<float, 4>({4, 4, 4, 4}, true);
}
TEST(SimdWilsonOperator, BitwiseFloatW8) {
  check_wilson_operator<float, 8>({4, 4, 4, 4}, true);
}
TEST(SimdWilsonOperator, BitwiseDoubleW4) {
  check_wilson_operator<double, 4>({4, 4, 4, 4}, true);
}
TEST(SimdWilsonOperator, FallsBackOnUndecomposableGeometry) {
  check_wilson_operator<float, 8>({2, 2, 2, 2}, false);
}

template <typename T, int W>
void check_schur_operator(const Coord& dims, bool expect_active) {
  const LatticeGeometry geo(dims);
  GaugeField<T> u(geo);
  u.set_random(SiteRngFactory(13));
  const double kappa = 0.12;
  const SchurWilsonOperator<T> ref_op(u, kappa);
  const SimdSchurWilsonOperator<T, W> simd_op(u, kappa);
  EXPECT_EQ(simd_op.simd_active(), expect_active);
  EXPECT_EQ(simd_op.vector_size(), ref_op.vector_size());

  const auto hv = static_cast<std::size_t>(geo.half_volume());
  aligned_vector<WilsonSpinor<T>> in(hv), ref(hv), got(hv);
  fill_random(span(in), 37);
  ref_op.apply(span(ref), cspan(in));
  simd_op.apply(span(got), cspan(in));
  EXPECT_EQ(count_mismatches(cspan(ref), cspan(got)), 0);
}

TEST(SimdSchurOperator, BitwiseFloatW4) {
  check_schur_operator<float, 4>({4, 4, 4, 4}, true);
}
TEST(SimdSchurOperator, BitwiseFloatW8) {
  check_schur_operator<float, 8>({4, 4, 4, 4}, true);
}
TEST(SimdSchurOperator, BitwiseDoubleW8) {
  check_schur_operator<double, 8>({4, 4, 4, 4}, true);
}
TEST(SimdSchurOperator, FallsBackOnUndecomposableGeometry) {
  check_schur_operator<double, 8>({2, 2, 2, 2}, false);
}

// --- reductions ------------------------------------------------------------

template <typename T, int W>
void check_reductions(const Coord& dims) {
  const LatticeGeometry geo(dims);
  auto vl = VectorLattice::make(geo, W);
  ASSERT_TRUE(vl.has_value());
  const auto vol = static_cast<std::size_t>(geo.volume());
  aligned_vector<WilsonSpinor<T>> x(vol), y(vol);
  fill_random(span(x), 41);
  fill_random(span(y), 43);
  aligned_vector<WilsonSpinor<Simd<T, W>>> vx(
      static_cast<std::size_t>(vl->total_sites())),
      vy(static_cast<std::size_t>(vl->total_sites()));
  pack_sites<T, W>(*vl, cspan(x), span(vx));
  pack_sites<T, W>(*vl, cspan(y), span(vy));

  // The packed reductions follow the canonical scalar-site order, so the
  // results are bit-identical doubles, not merely close.
  EXPECT_EQ(blas::norm2(cspan(x)), blas::norm2(cspan(vx), vl->gather()));
  const Cplxd ds = blas::dot(cspan(x), cspan(y));
  const Cplxd dv = blas::dot(cspan(vx), cspan(vy), vl->gather());
  EXPECT_EQ(ds.re, dv.re);
  EXPECT_EQ(ds.im, dv.im);
  EXPECT_EQ(blas::re_dot(cspan(x), cspan(y)),
            blas::re_dot(cspan(vx), cspan(vy), vl->gather()));
}

TEST(SimdBlas, ReductionsBitwiseFloatW4) {
  check_reductions<float, 4>({4, 4, 4, 4});
}
TEST(SimdBlas, ReductionsBitwiseFloatW8) {
  check_reductions<float, 8>({4, 4, 4, 4});
}
TEST(SimdBlas, ReductionsBitwiseDoubleW8) {
  check_reductions<double, 8>({8, 4, 4, 6});
}

// --- lane-aware 16-bit quantization ----------------------------------------

TEST(SimdCompressed, QuantizeSpinorPerLane) {
  constexpr int W = 4;
  WilsonSpinor<float> sites[W];
  for (int l = 0; l < W; ++l) {
    aligned_vector<WilsonSpinor<float>> tmp(1);
    fill_random(span(tmp), 50 + static_cast<std::uint64_t>(l));
    sites[l] = tmp[0];
    // Very different magnitudes per lane: a shared amax would visibly
    // mis-scale the small lanes.
    sites[l] *= static_cast<float>(std::pow(10.0, l - 2));
  }
  WilsonSpinor<Simd<float, W>> packed;
  for (int l = 0; l < W; ++l) insert_lane(packed, l, sites[l]);
  const WilsonSpinor<Simd<float, W>> q = quantize_spinor(packed);
  for (int l = 0; l < W; ++l) {
    const WilsonSpinor<float> want = quantize_spinor(sites[l]);
    const WilsonSpinor<float> got = extract_lane(q, l);
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        EXPECT_EQ(got.s[s].c[c], want.s[s].c[c]);
  }
}

TEST(SimdCompressed, QuantizeLinkPerLane) {
  constexpr int W = 4;
  const LatticeGeometry geo({4, 4, 4, 4});
  GaugeField<float> u(geo);
  u.set_random(SiteRngFactory(61));
  ColorMatrix<Simd<float, W>> packed;
  for (int l = 0; l < W; ++l) insert_lane(packed, l, u(l, 0));
  const ColorMatrix<Simd<float, W>> q = quantize_link(packed);
  for (int l = 0; l < W; ++l) {
    const ColorMatrix<float> want = quantize_link(u(l, 0));
    const ColorMatrix<float> got = extract_lane(q, l);
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) EXPECT_EQ(got.m[r][c], want.m[r][c]);
  }
}

}  // namespace
}  // namespace lqcd
