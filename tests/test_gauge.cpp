// Tests for the gauge sector: field containers, staples/plaquettes, SU(2)
// subgroup machinery, heatbath/over-relaxation thermalization, I/O and
// APE smearing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gauge/gauge_field.hpp"
#include "gauge/heatbath.hpp"
#include "gauge/io.hpp"
#include "gauge/observables.hpp"
#include "gauge/smear.hpp"
#include "gauge/staples.hpp"
#include "gauge/su2.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& small_geo() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

GaugeFieldD random_gauge(const LatticeGeometry& geo, std::uint64_t seed) {
  GaugeFieldD u(geo);
  u.set_random(SiteRngFactory(seed));
  return u;
}

TEST(GaugeField, UnitFieldPlaquetteIsOne) {
  GaugeFieldD u(small_geo());
  u.set_unit();
  EXPECT_NEAR(average_plaquette(u), 1.0, 1e-14);
  EXPECT_NEAR(average_plaquette_spatial(u), 1.0, 1e-14);
  EXPECT_NEAR(average_plaquette_temporal(u), 1.0, 1e-14);
}

TEST(GaugeField, UnitFieldActionIsZero) {
  GaugeFieldD u(small_geo());
  u.set_unit();
  EXPECT_NEAR(wilson_action(u, 6.0), 0.0, 1e-10);
}

TEST(GaugeField, RandomFieldPlaquetteNearZero) {
  const GaugeFieldD u = random_gauge(small_geo(), 7);
  // Haar-random links give <P> ~ 0 within statistical noise.
  EXPECT_LT(std::abs(average_plaquette(u)), 0.1);
}

TEST(GaugeField, RandomLinksAreUnitary) {
  const GaugeFieldD u = random_gauge(small_geo(), 8);
  EXPECT_LT(u.max_unitarity_error(), 1e-12);
}

TEST(GaugeField, HotStartReproducible) {
  const GaugeFieldD a = random_gauge(small_geo(), 9);
  const GaugeFieldD b = random_gauge(small_geo(), 9);
  double diff = 0.0;
  for (std::int64_t s = 0; s < small_geo().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) diff += norm2(a(s, mu) - b(s, mu));
  EXPECT_EQ(diff, 0.0);
}

TEST(GaugeField, ReunitarizeAllReportsDrift) {
  GaugeFieldD u = random_gauge(small_geo(), 10);
  u(5, 2).m[0][0] += Cplxd(1e-3, 0.0);
  const double worst = u.reunitarize_all();
  EXPECT_GT(worst, 1e-4);
  EXPECT_LT(u.max_unitarity_error(), 1e-13);
}

TEST(GaugeField, PrecisionConversion) {
  const GaugeFieldD u = random_gauge(small_geo(), 11);
  GaugeFieldF uf(small_geo());
  convert_gauge(uf, u);
  EXPECT_NEAR(uf(3, 1).m[1][2].re, static_cast<float>(u(3, 1).m[1][2].re),
              1e-7);
}

TEST(Staples, ActionIdentity) {
  // Sum over links of Re tr(U A) counts every plaquette 4 times (once per
  // contributing link), in both planes orders -> equals 4 * 2 * sum_plaq.
  const GaugeFieldD u = random_gauge(small_geo(), 12);
  const LatticeGeometry& geo = u.geometry();
  double link_sum = 0.0;
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      link_sum += re_trace(mul(u(s, mu), staple_sum(u, s, mu)));
  double plaq_sum = 0.0;
  for (std::int64_t s = 0; s < geo.volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      for (int nu = mu + 1; nu < Nd; ++nu)
        plaq_sum += re_trace(plaquette_matrix(u, s, mu, nu));
  EXPECT_NEAR(link_sum, 4.0 * plaq_sum, 1e-8 * std::abs(link_sum) + 1e-8);
}

TEST(Staples, PlaquetteMatrixIsUnitary) {
  const GaugeFieldD u = random_gauge(small_geo(), 13);
  const ColorMatrixD p = plaquette_matrix(u, 17, 0, 2);
  EXPECT_LT(unitarity_error(p), 1e-12);
}

TEST(Su2, EmbedIsSpecialUnitary) {
  CounterRng rng(50, 0);
  const Su2 s = su2_random(rng);
  const ColorMatrixD m = su2_embed(s, 0, 2);
  EXPECT_LT(unitarity_error(m), 1e-13);
  EXPECT_NEAR(det(m).re, 1.0, 1e-13);
}

TEST(Su2, QuaternionMulMatchesMatrixMul) {
  CounterRng rng(51, 0);
  const Su2 a = su2_random(rng);
  const Su2 b = su2_random(rng);
  const Su2 c = mul(a, b);
  const ColorMatrixD want = mul(su2_embed(a, 1, 2), su2_embed(b, 1, 2));
  const ColorMatrixD got = su2_embed(c, 1, 2);
  EXPECT_LT(norm2(got - want), 1e-24);
}

TEST(Su2, ConjIsDagger) {
  CounterRng rng(52, 0);
  const Su2 a = su2_random(rng);
  const ColorMatrixD want = dagger(su2_embed(a, 0, 1));
  EXPECT_LT(norm2(su2_embed(conj(a), 0, 1) - want), 1e-26);
}

TEST(Su2, ProjectionRecoversScaledSu2) {
  CounterRng rng(53, 0);
  const Su2 a = su2_random(rng);
  ColorMatrixD m = su2_embed(a, 0, 1);
  m *= 3.7;  // scaled group element: projection must recover k and s
  Su2 s;
  const double k = su2_project(m, 0, 1, s);
  EXPECT_NEAR(k, 3.7, 1e-12);
  EXPECT_NEAR(s.a0, a.a0, 1e-12);
  EXPECT_NEAR(s.a1, a.a1, 1e-12);
  EXPECT_NEAR(s.a2, a.a2, 1e-12);
  EXPECT_NEAR(s.a3, a.a3, 1e-12);
}

TEST(Su2, LeftMulMatchesEmbeddedProduct) {
  CounterRng rng(54, 0);
  const Su2 r = su2_random(rng);
  ColorMatrixD w;
  for (int i = 0; i < Nc; ++i)
    for (int j = 0; j < Nc; ++j)
      w.m[i][j] = Cplxd(rng.gaussian(), rng.gaussian());
  ColorMatrixD got = w;
  su2_left_mul(got, r, 0, 2);
  const ColorMatrixD want = mul(su2_embed(r, 0, 2), w);
  EXPECT_LT(norm2(got - want), 1e-24);
}

TEST(Su2, HeatbathSampleDistribution) {
  // For weight sqrt(1-a0^2) exp(alpha a0), large alpha concentrates a0
  // near 1; check the sample mean against a numerically integrated value.
  CounterRng rng(55, 0);
  const double alpha = 8.0;
  double s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += su2_heatbath_sample(alpha, rng).a0;
  const double got = s / n;
  // Numerical reference via trapezoid integration.
  double num = 0.0, den = 0.0;
  const int grid = 20000;
  for (int i = 0; i <= grid; ++i) {
    const double a0 = -1.0 + 2.0 * i / grid;
    const double w = std::sqrt(std::max(0.0, 1.0 - a0 * a0)) *
                     std::exp(alpha * (a0 - 1.0));
    num += w * a0;
    den += w;
  }
  EXPECT_NEAR(got, num / den, 5e-3);
}

TEST(Su2, HeatbathSamplesAreUnitQuaternions) {
  CounterRng rng(56, 0);
  for (int i = 0; i < 100; ++i) {
    const Su2 s = su2_heatbath_sample(3.0, rng);
    EXPECT_NEAR(norm(s), 1.0, 1e-12);
    EXPECT_LE(s.a0, 1.0);
    EXPECT_GE(s.a0, -1.0);
  }
}

TEST(Heatbath, LinksStayUnitary) {
  GaugeFieldD u(small_geo());
  u.set_random(SiteRngFactory(123));
  Heatbath hb(u, {.beta = 5.7, .or_per_hb = 1, .seed = 99});
  hb.sweep();
  EXPECT_LT(u.max_unitarity_error(), 1e-12);
}

TEST(Heatbath, Reproducible) {
  GaugeFieldD u1(small_geo()), u2(small_geo());
  u1.set_random(SiteRngFactory(123));
  u2.set_random(SiteRngFactory(123));
  Heatbath hb1(u1, {.beta = 5.7, .or_per_hb = 1, .seed = 99});
  Heatbath hb2(u2, {.beta = 5.7, .or_per_hb = 1, .seed = 99});
  const double p1 = hb1.sweep();
  const double p2 = hb2.sweep();
  EXPECT_EQ(p1, p2);
}

TEST(Heatbath, ThermalizesFromHotAndCold) {
  // Hot and cold starts must converge to the same plaquette (within loose
  // statistical errors) — the standard thermalization check.
  const double beta = 5.7;
  GaugeFieldD hot(small_geo()), cold(small_geo());
  hot.set_random(SiteRngFactory(1));
  cold.set_unit();
  Heatbath hb_hot(hot, {.beta = beta, .or_per_hb = 1, .seed = 2});
  Heatbath hb_cold(cold, {.beta = beta, .or_per_hb = 1, .seed = 3});
  double p_hot = 0.0, p_cold = 0.0;
  for (int i = 0; i < 20; ++i) {
    p_hot = hb_hot.sweep();
    p_cold = hb_cold.sweep();
  }
  EXPECT_NEAR(p_hot, p_cold, 0.05);
  // At beta = 5.7 the plaquette is ~0.55; accept a generous window for a
  // 4^4 box.
  EXPECT_GT(p_hot, 0.40);
  EXPECT_LT(p_hot, 0.70);
}

TEST(Heatbath, StrongCouplingLimit) {
  // At small beta, <P> ~ beta/18.
  const double beta = 0.5;
  GaugeFieldD u(small_geo());
  u.set_random(SiteRngFactory(5));
  Heatbath hb(u, {.beta = beta, .or_per_hb = 0, .seed = 6});
  double p = 0.0;
  for (int i = 0; i < 10; ++i) hb.sweep();
  for (int i = 0; i < 20; ++i) p += hb.sweep();
  p /= 20.0;
  EXPECT_NEAR(p, plaquette_strong_coupling(beta), 0.01);
}

TEST(Heatbath, OverRelaxationPreservesAction) {
  GaugeFieldD u(small_geo());
  u.set_random(SiteRngFactory(7));
  const double beta = 5.7;
  Heatbath hb(u, {.beta = beta, .or_per_hb = 0, .seed = 8});
  for (int i = 0; i < 5; ++i) hb.sweep();  // mild thermalization
  const double before = wilson_action(u, beta);
  hb.overrelax_pass();
  const double after = wilson_action(u, beta);
  // Microcanonical update: action unchanged to reunitarization rounding.
  EXPECT_NEAR(after, before, 1e-6 * std::abs(before));
}

TEST(Heatbath, RejectsBadParams) {
  GaugeFieldD u(small_geo());
  u.set_unit();
  EXPECT_THROW(Heatbath(u, {.beta = -1.0}), Error);
  EXPECT_THROW(Heatbath(u, {.beta = 6.0, .or_per_hb = -1}), Error);
}

class GaugeIoTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "lqcd_test_gauge.cfg")
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(GaugeIoTest, RoundTripBitExact) {
  const GaugeFieldD u = random_gauge(small_geo(), 20);
  save_gauge(u, path_, 6.0);
  GaugeFieldD v(small_geo());
  const GaugeFileHeader h = load_gauge(v, path_);
  EXPECT_DOUBLE_EQ(h.beta, 6.0);
  EXPECT_EQ(h.dims, small_geo().dims());
  double diff = 0.0;
  for (std::int64_t s = 0; s < small_geo().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu) diff += norm2(u(s, mu) - v(s, mu));
  EXPECT_EQ(diff, 0.0);
}

TEST_F(GaugeIoTest, HeaderOnlyRead) {
  const GaugeFieldD u = random_gauge(small_geo(), 21);
  save_gauge(u, path_, 5.5);
  const GaugeFileHeader h = read_gauge_header(path_);
  EXPECT_DOUBLE_EQ(h.beta, 5.5);
}

TEST_F(GaugeIoTest, DetectsCorruption) {
  const GaugeFieldD u = random_gauge(small_geo(), 22);
  save_gauge(u, path_, 6.0);
  // Flip one byte in the middle of the link data.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(1000);
    char c;
    f.seekg(1000);
    f.get(c);
    f.seekp(1000);
    f.put(static_cast<char>(c ^ 0x01));
  }
  GaugeFieldD v(small_geo());
  EXPECT_THROW(load_gauge(v, path_), Error);
}

TEST_F(GaugeIoTest, DetectsDimensionMismatch) {
  const GaugeFieldD u = random_gauge(small_geo(), 23);
  save_gauge(u, path_, 6.0);
  LatticeGeometry other({4, 4, 4, 6});
  GaugeFieldD v(other);
  EXPECT_THROW(load_gauge(v, path_), Error);
}

TEST_F(GaugeIoTest, MissingFileThrows) {
  GaugeFieldD v(small_geo());
  EXPECT_THROW(load_gauge(v, "/nonexistent/path/cfg"), Error);
}

TEST(Smear, UnitFieldIsFixedPoint) {
  GaugeFieldD u(small_geo());
  u.set_unit();
  ape_smear(u, {.alpha = 0.7, .iterations = 2});
  EXPECT_NEAR(average_plaquette(u), 1.0, 1e-12);
}

TEST(Smear, IncreasesSpatialPlaquette) {
  GaugeFieldD u(small_geo());
  u.set_random(SiteRngFactory(30));
  Heatbath hb(u, {.beta = 5.7, .or_per_hb = 1, .seed = 31});
  for (int i = 0; i < 5; ++i) hb.sweep();
  const double before = average_plaquette_spatial(u);
  ape_smear(u, {.alpha = 0.7, .iterations = 3, .spatial_only = true});
  const double after = average_plaquette_spatial(u);
  EXPECT_GT(after, before);
  EXPECT_LT(u.max_unitarity_error(), 1e-12);
}

TEST(Smear, SpatialOnlyLeavesTemporalLinks) {
  GaugeFieldD u(small_geo());
  u.set_random(SiteRngFactory(32));
  GaugeFieldD orig(small_geo());
  for (std::int64_t s = 0; s < small_geo().volume(); ++s)
    orig.site(s) = u.site(s);
  ape_smear(u, {.alpha = 0.7, .iterations = 1, .spatial_only = true});
  double tdiff = 0.0;
  for (std::int64_t s = 0; s < small_geo().volume(); ++s)
    tdiff += norm2(u(s, 3) - orig(s, 3));
  EXPECT_EQ(tdiff, 0.0);
}

}  // namespace
}  // namespace lqcd
