// Tests for the public facade: Context, EnsembleGenerator, the end-to-end
// run_spectroscopy pipeline and the ScalingStudy wrapper.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "gauge/observables.hpp"

namespace lqcd {
namespace {

TEST(Core, Version) {
  const Version v = version();
  EXPECT_GE(v.major, 1);
  EXPECT_STREQ(v.string, "1.0.0");
}

TEST(Core, ContextOwnsGeometry) {
  Context ctx({4, 4, 4, 8}, 42);
  EXPECT_EQ(ctx.geometry().volume(), 4 * 4 * 4 * 8);
  EXPECT_EQ(ctx.seed(), 42u);
}

TEST(Core, EnsembleGeneratorThermalizesAndDecorates) {
  Context ctx({4, 4, 4, 4}, 7);
  EnsembleParams ep;
  ep.beta = 5.7;
  ep.thermalization_sweeps = 10;
  ep.sweeps_between_configs = 2;
  EnsembleGenerator gen(ctx, ep);
  EXPECT_FALSE(gen.thermalized());

  const GaugeFieldD& c1 = gen.next_config();
  EXPECT_TRUE(gen.thermalized());
  const double p1 = average_plaquette(c1);
  EXPECT_GT(p1, 0.4);
  EXPECT_LT(p1, 0.75);

  // Successive configs differ.
  GaugeFieldD snapshot(ctx.geometry());
  for (std::int64_t s = 0; s < ctx.geometry().volume(); ++s)
    snapshot.site(s) = c1.site(s);
  const GaugeFieldD& c2 = gen.next_config();
  double diff = 0.0;
  for (std::int64_t s = 0; s < ctx.geometry().volume(); ++s)
    for (int mu = 0; mu < Nd; ++mu)
      diff += norm2(c2(s, mu) - snapshot(s, mu));
  EXPECT_GT(diff, 0.0);
  EXPECT_NEAR(gen.plaquette(), average_plaquette(c2), 1e-14);
}

TEST(Core, RunSpectroscopyEndToEnd) {
  Context ctx({4, 4, 4, 8}, 11);
  EnsembleParams ep;
  ep.beta = 5.9;
  ep.thermalization_sweeps = 8;
  EnsembleGenerator gen(ctx, ep);
  const GaugeFieldD& u = gen.next_config();

  SpectroscopyParams sp;
  sp.propagator.kappa = 0.11;
  sp.propagator.solver.tol = 1e-9;
  sp.plateau_t_min = 2;
  sp.plateau_t_max = 4;
  const SpectroscopyResult res = run_spectroscopy(u, sp);

  EXPECT_TRUE(res.solve_stats.converged);
  ASSERT_EQ(res.pion.c.size(), 8u);
  for (double v : res.pion.c) EXPECT_GT(v, 0.0);
  EXPECT_GT(res.pion_mass.points, 0);
  EXPECT_GT(res.pion_mass.mass, 0.0);
  // Hadron mass ordering on a heavy-quark quenched lattice: the rho is at
  // or above the pion, the nucleon above both (loose statistical check).
  if (res.rho_mass.points > 0)
    EXPECT_GT(res.rho_mass.mass, 0.8 * res.pion_mass.mass);
  if (res.nucleon_mass.points > 0)
    EXPECT_GT(res.nucleon_mass.mass, res.pion_mass.mass);
}

TEST(Core, ScalingStudyWrapper) {
  ScalingStudy study(blue_gene_q(), PerfModelOptions{});
  const auto strong = study.strong({32, 32, 32, 64}, {16, 128, 1024});
  ASSERT_EQ(strong.size(), 3u);
  EXPECT_GT(strong.back().sustained_tflops,
            strong.front().sustained_tflops);
  const auto weak = study.weak({8, 8, 8, 8}, {16, 1024});
  ASSERT_EQ(weak.size(), 2u);
  EXPECT_GT(weak.back().efficiency, 0.5);
  EXPECT_EQ(study.machine().name, blue_gene_q().name);
}

}  // namespace
}  // namespace lqcd
