// Tests for the compressed (16-bit "half") storage path: quantization
// error bounds and the HalfWilsonOperator inside a mixed-precision chain.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "dirac/compressed.hpp"
#include "dirac/normal.hpp"
#include "dirac/wilson.hpp"
#include "gauge/heatbath.hpp"
#include "linalg/blas.hpp"
#include "solver/cg.hpp"
#include "solver/mixed_cg.hpp"

namespace lqcd {
namespace {

const LatticeGeometry& geo4() {
  static LatticeGeometry geo({4, 4, 4, 4});
  return geo;
}

const GaugeFieldD& gauge() {
  static GaugeFieldD u = [] {
    GaugeFieldD v(geo4());
    v.set_random(SiteRngFactory(950));
    Heatbath hb(v, {.beta = 5.9, .or_per_hb = 1, .seed = 951});
    for (int i = 0; i < 5; ++i) hb.sweep();
    return v;
  }();
  return u;
}

TEST(Quantization, LinkRoundTripErrorBounded) {
  CounterRng rng(952, 0);
  for (int rep = 0; rep < 50; ++rep) {
    const ColorMatrix<float> u(
        [&] {
          ColorMatrixD d = random_su3<double>(rng);
          ColorMatrix<float> f;
          for (int r = 0; r < Nc; ++r)
            for (int c = 0; c < Nc; ++c) f.m[r][c] = Cplxf(d.m[r][c]);
          return f;
        }());
    const ColorMatrix<float> q = quantize_link(u);
    // int16 fixed point over [-1, 1]: per-entry error <= 2^-16.
    for (int r = 0; r < Nc; ++r)
      for (int c = 0; c < Nc; ++c) {
        EXPECT_LT(std::abs(q.m[r][c].re - u.m[r][c].re), 1.0f / 32767.0f);
        EXPECT_LT(std::abs(q.m[r][c].im - u.m[r][c].im), 1.0f / 32767.0f);
      }
  }
}

TEST(Quantization, SpinorRoundTripRelativeError) {
  CounterRng rng(953, 0);
  for (int rep = 0; rep < 50; ++rep) {
    WilsonSpinor<float> psi;
    const float scale = static_cast<float>(std::exp(rng.uniform(-8, 8)));
    for (int s = 0; s < Ns; ++s)
      for (int c = 0; c < Nc; ++c)
        psi.s[s].c[c] = Cplxf(static_cast<float>(rng.gaussian()) * scale,
                              static_cast<float>(rng.gaussian()) * scale);
    const WilsonSpinor<float> q = quantize_spinor(psi);
    // Block-float: error bounded by max-magnitude / 2^15 per component.
    const float n_ref = std::sqrt(norm2(psi));
    const float err = std::sqrt(norm2(q - psi));
    EXPECT_LT(err, 1e-3f * n_ref);
  }
}

TEST(Quantization, ZeroSpinorExact) {
  const WilsonSpinor<float> z{};
  EXPECT_EQ(norm2(quantize_spinor(z)), 0.0f);
}

TEST(Quantization, DenormalScaleAmaxFlushesToZero) {
  // A spinor whose amax is subnormal would overflow 1/amax to inf
  // (turning exactly-zero components into 0 * inf = NaN, whose int16
  // cast is UB). The quantizer flushes such sites to the exact zero
  // spinor instead — values below the float normal range are zero to
  // every consumer of half storage, and they must never poison a field.
  WilsonSpinor<float> psi{};
  psi.s[0].c[0] = Cplxf(1e-41f, -5e-42f);
  psi.s[3].c[2] = Cplxf(0.0f, 2e-42f);
  const WilsonSpinor<float> q = quantize_spinor(psi);
  EXPECT_EQ(norm2(q), 0.0f);
  // ...while the smallest *normal* amax still round-trips within the
  // block-float bound (1/amax stays finite there).
  WilsonSpinor<float> tiny{};
  const float a = std::numeric_limits<float>::min();  // 2^-126
  tiny.s[0].c[0] = Cplxf(a, -0.5f * a);
  const WilsonSpinor<float> qt = quantize_spinor(tiny);
  EXPECT_TRUE(std::isfinite(qt.s[0].c[0].re));
  EXPECT_NEAR(qt.s[0].c[0].re, a, a / 32767.0f);
  EXPECT_EQ(qt.s[1].c[1].re, 0.0f);
}

TEST(HalfOperator, CloseToFloatOperator) {
  GaugeFieldF uf(geo4());
  convert_gauge(uf, gauge());
  const double kappa = 0.12;
  WilsonOperator<float> m_f(uf, kappa);
  HalfWilsonOperator m_h(uf, kappa);

  FermionFieldF in(geo4()), a(geo4()), b(geo4());
  SiteRngFactory rngs(954);
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    for (int sp = 0; sp < Ns; ++sp)
      for (int c = 0; c < Nc; ++c)
        in[s].s[sp].c[c] = Cplxf(static_cast<float>(rng.gaussian()),
                                 static_cast<float>(rng.gaussian()));
  }
  m_f.apply(a.span(), in.span());
  m_h.apply(b.span(), in.span());
  double err = 0.0, ref = 0.0;
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    err += norm2(a[s] - b[s]);
    ref += norm2(a[s]);
  }
  const double rel = std::sqrt(err / ref);
  EXPECT_GT(rel, 0.0);     // quantization must actually do something
  EXPECT_LT(rel, 5e-3);    // ...but stay at the half-precision level
}

TEST(HalfOperator, ApplyIsSafeUnderFullAliasing) {
  // Regression: apply() used to stage the quantized input in a shared
  // mutable member, which both raced concurrent callers and made
  // out == in unsafe. The per-call buffer must give the aliased call
  // the exact same bits as the distinct-buffer one.
  GaugeFieldF uf(geo4());
  convert_gauge(uf, gauge());
  HalfWilsonOperator m_h(uf, 0.12);

  FermionFieldF in(geo4()), out(geo4()), aliased(geo4());
  SiteRngFactory rngs(956);
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    for (int sp = 0; sp < Ns; ++sp)
      for (int c = 0; c < Nc; ++c)
        in[s].s[sp].c[c] = Cplxf(static_cast<float>(rng.gaussian()),
                                 static_cast<float>(rng.gaussian()));
    aliased[s] = in[s];
  }
  m_h.apply(out.span(), in.span());
  m_h.apply(aliased.span(), aliased.span());  // out.data() == in.data()
  EXPECT_EQ(std::memcmp(out.span().data(), aliased.span().data(),
                        static_cast<std::size_t>(geo4().volume()) *
                            sizeof(WilsonSpinor<float>)),
            0);
}

TEST(HalfOperator, CgOnHalfNormalEquationsConverges) {
  // Half precision caps the achievable residual around the quantization
  // level; CG must still reach a loose tolerance.
  GaugeFieldF uf(geo4());
  convert_gauge(uf, gauge());
  HalfWilsonOperator m_h(uf, 0.12);
  NormalOperator<float> n_h(m_h);
  FermionFieldF b(geo4()), x(geo4());
  for (auto& s : b.span()) s.s[0].c[0] = Cplxf(1.0f);
  SolverParams p{.tol = 1e-3, .max_iterations = 500,
                 .check_true_residual = true};
  const SolverResult r = cg_solve<float>(n_h, x.span(), b.span(), p);
  EXPECT_TRUE(r.converged);
}

TEST(HalfOperator, MixedChainReachesDoublePrecision) {
  // The QUDA trick: a double outer loop squeezes full precision out of a
  // half-storage inner solver, at some iteration overhead.
  const GaugeFieldD& u = gauge();
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  const double kappa = 0.12;
  WilsonOperator<double> m_d(u, kappa);
  HalfWilsonOperator m_h(uf, kappa);
  NormalOperator<double> n_d(m_d);
  NormalOperator<float> n_h(m_h);

  FermionFieldD b(geo4()), x(geo4());
  SiteRngFactory rngs(955);
  for (std::int64_t s = 0; s < geo4().volume(); ++s) {
    CounterRng rng = rngs.make(static_cast<std::uint64_t>(s));
    b[s].s[0].c[0] = Cplxd(rng.gaussian(), rng.gaussian());
  }
  MixedCgParams mp;
  mp.outer.tol = 1e-10;
  mp.inner_reduction = 1e-3;  // half can't go much deeper per cycle
  mp.max_outer_cycles = 100;
  const SolverResult r = mixed_cg_solve(n_d, n_h, x.span(), b.span(), mp);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.relative_residual, 1e-10);
  EXPECT_GT(r.outer_cycles, 1);
}

TEST(HalfOperator, MoreOuterCyclesThanFloatInner) {
  // Precision ladder ordering: the half inner solver needs at least as
  // many correction cycles as the float inner one.
  const GaugeFieldD& u = gauge();
  GaugeFieldF uf(geo4());
  convert_gauge(uf, u);
  const double kappa = 0.12;
  WilsonOperator<double> m_d(u, kappa);
  WilsonOperator<float> m_f(uf, kappa);
  HalfWilsonOperator m_h(uf, kappa);
  NormalOperator<double> n_d(m_d);
  NormalOperator<float> n_f(m_f);
  NormalOperator<float> n_h(m_h);

  FermionFieldD b(geo4()), x1(geo4()), x2(geo4());
  for (auto& s : b.span()) s.s[2].c[1] = Cplxd(1.0);
  MixedCgParams mp;
  mp.outer.tol = 1e-11;
  mp.inner_reduction = 1e-3;
  mp.max_outer_cycles = 100;
  const SolverResult rf = mixed_cg_solve(n_d, n_f, x1.span(), b.span(), mp);
  const SolverResult rh = mixed_cg_solve(n_d, n_h, x2.span(), b.span(), mp);
  ASSERT_TRUE(rf.converged);
  ASSERT_TRUE(rh.converged);
  EXPECT_GE(rh.outer_cycles, rf.outer_cycles);
}

}  // namespace
}  // namespace lqcd
